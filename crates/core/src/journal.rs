//! Durable cell journal: crash-safe progress for long sweeps.
//!
//! Every sweep run through the journaled runner entry points appends
//! one self-describing record per *finished* cell to
//! `results/journal/<experiment>.jsonl`, flushed and fsynced per record
//! so completed work survives `SIGKILL`, OOM, or a machine reboot.
//! `repro <experiment> --resume` replays the journal, skips completed
//! cells, and re-runs only the missing or failed ones; a fresh run and
//! a kill-at-any-point-then-resume run produce byte-identical result
//! files because the replayed payloads are lossless.
//!
//! ## Record format (one JSON object per line)
//!
//! ```text
//! {"v":1,"fp":"9f3a01bc","seq":4,"label":"pressure/Mcf/Baseline/r0.000",
//!  "outcome":"ok","attempts":1,"reason":"","refs":11000,
//!  "prep":"3fb99999a0000000","sim":"3f847ae140000000",
//!  "payload":"sim1|11000|...","crc":"d1c529a7"}
//! ```
//!
//! * `v` — record format version; records with any other version are
//!   quarantined, never interpreted.
//! * `fp` — fingerprint of the producing invocation (experiment name +
//!   every flag that changes results: accesses, seed, benchmarks,
//!   cores, faults). A record whose fingerprint does not match the
//!   current invocation is ignored with a loud note — mismatched flags
//!   are never silently reused.
//! * `seq` — append sequence number, for auditing.
//! * `outcome` — `ok`, `failed`, or `quarantined`; only `ok` records
//!   are replayed, the others are re-run on resume.
//! * `prep`/`sim` — the cell's wall-clock seconds as IEEE-754 bit
//!   patterns (hex), so replayed throughput metrics are bit-exact.
//! * `payload` — the cell's result, encoded by [`JournalPayload`]
//!   (lossless: u64s as decimal, f64s as bit patterns).
//! * `crc` — CRC32 (IEEE) over every byte of the line before the
//!   `,"crc"` key. A truncated line, flipped bit, or garbage bytes fail
//!   the checksum and the record is quarantined, never trusted.
//!
//! Corrupt lines found at open are moved to `<journal>.corrupt-<n>`
//! (first free `n`) and the journal is rewritten with only the valid
//! records, so nothing is silently lost and nothing corrupt lingers.
//!
//! `COLT_CRASH_AFTER_CELLS=<k>` aborts the process (no destructors, no
//! flushing — `SIGKILL`-equivalent) immediately after the `k`-th record
//! of the run is fsynced: the deterministic mid-sweep kill the
//! crash-recovery smoke stage of `scripts/verify.sh` is built on.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal record format version. Bump when the record schema or any
/// payload encoding changes shape; old records are then quarantined
/// instead of misread.
pub const RECORD_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven — the build is offline, so no
// crates.io checksum dependency.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Fingerprint of a canonical configuration string: 8 hex digits.
pub fn fingerprint_of(canonical: &str) -> String {
    format!("{:08x}", crc32(canonical.as_bytes()))
}

/// Maps a fingerprint (any string, typically [`fingerprint_of`] output)
/// onto one of `shards` buckets. `repro serve` shards its prepared-pool
/// locks this way so unrelated configurations never contend. Stable
/// across processes — it reuses the journal's CRC32, not a randomized
/// hasher.
pub fn fingerprint_bucket(fingerprint: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    crc32(fingerprint.as_bytes()) as usize % shards
}

// ---------------------------------------------------------------------
// Payload encoding: lossless, versioned through RECORD_VERSION.
// ---------------------------------------------------------------------

/// A value that can ride in a journal record's `payload` field and be
/// reconstructed bit-exactly on resume. Implemented by every result
/// type the experiment drivers sweep over.
pub trait JournalPayload: Sized {
    /// Serializes the value. Must be lossless: a resumed sweep renders
    /// byte-identical result files from decoded payloads.
    fn encode(&self) -> String;
    /// Parses a payload produced by [`JournalPayload::encode`]. `None`
    /// on any mismatch — the cell is then re-run, never guessed at.
    fn decode(s: &str) -> Option<Self>;
}

/// Builder for `|`-separated payload fields, tag-prefixed so a payload
/// of the wrong type never decodes by accident.
pub struct Enc(String);

impl Enc {
    /// Starts a payload with a type tag (e.g. `"sim1"`).
    pub fn new(tag: &str) -> Self {
        Enc(tag.to_string())
    }

    /// Appends a u64 field.
    #[must_use]
    pub fn u(mut self, v: u64) -> Self {
        self.0.push('|');
        self.0.push_str(&v.to_string());
        self
    }

    /// Appends an f64 field as its IEEE-754 bit pattern (lossless).
    #[must_use]
    pub fn f(mut self, v: f64) -> Self {
        self.0.push('|');
        self.0.push_str(&format!("{:016x}", v.to_bits()));
        self
    }

    /// Appends a string field, escaping the separators.
    #[must_use]
    pub fn s(mut self, v: &str) -> Self {
        self.0.push('|');
        for ch in v.chars() {
            match ch {
                '\\' => self.0.push_str("\\\\"),
                '|' => self.0.push_str("\\b"),
                ';' => self.0.push_str("\\c"),
                c => self.0.push(c),
            }
        }
        self
    }

    /// Finishes the payload.
    pub fn done(self) -> String {
        self.0
    }
}

/// Reader over an [`Enc`]-built payload.
pub struct Dec<'a> {
    parts: std::str::Split<'a, char>,
}

impl<'a> Dec<'a> {
    /// Opens a payload, checking the type tag.
    pub fn new(s: &'a str, tag: &str) -> Option<Self> {
        let mut parts = s.split('|');
        if parts.next()? != tag {
            return None;
        }
        Some(Dec { parts })
    }

    /// Reads the next u64 field.
    pub fn u(&mut self) -> Option<u64> {
        self.parts.next()?.parse().ok()
    }

    /// Reads the next f64 field (bit pattern).
    pub fn f(&mut self) -> Option<f64> {
        Some(f64::from_bits(u64::from_str_radix(self.parts.next()?, 16).ok()?))
    }

    /// Reads the next string field, unescaping.
    pub fn s(&mut self) -> Option<String> {
        let raw = self.parts.next()?;
        let mut out = String::with_capacity(raw.len());
        let mut chars = raw.chars();
        while let Some(ch) = chars.next() {
            if ch == '\\' {
                match chars.next()? {
                    '\\' => out.push('\\'),
                    'b' => out.push('|'),
                    'c' => out.push(';'),
                    _ => return None,
                }
            } else {
                out.push(ch);
            }
        }
        Some(out)
    }

    /// True when every field has been consumed (decode sanity check).
    pub fn exhausted(mut self) -> bool {
        self.parts.next().is_none()
    }
}

impl JournalPayload for u64 {
    fn encode(&self) -> String {
        Enc::new("u1").u(*self).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = Dec::new(s, "u1")?;
        let v = d.u()?;
        d.exhausted().then_some(v)
    }
}

impl JournalPayload for f64 {
    fn encode(&self) -> String {
        Enc::new("f1").f(*self).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = Dec::new(s, "f1")?;
        let v = d.f()?;
        d.exhausted().then_some(v)
    }
}

/// Vectors journal as `vecN;elem;elem;...` — element payloads escape
/// `;`, so the join is unambiguous.
impl<T: JournalPayload> JournalPayload for Vec<T> {
    fn encode(&self) -> String {
        let mut out = format!("vec{}", self.len());
        for item in self {
            out.push(';');
            out.push_str(&item.encode());
        }
        out
    }
    fn decode(s: &str) -> Option<Self> {
        let mut parts = s.split(';');
        let head = parts.next()?;
        let n: usize = head.strip_prefix("vec")?.parse().ok()?;
        let items: Vec<T> = parts.map(T::decode).collect::<Option<Vec<T>>>()?;
        (items.len() == n).then_some(items)
    }
}

// ---------------------------------------------------------------------
// Payload impls for the simulation result types every driver sweeps
// over. Encodings are flat field lists — bump RECORD_VERSION (or the
// type tag) whenever a struct gains or loses a counter.
// ---------------------------------------------------------------------

pub(crate) fn enc_sim(mut e: Enc, r: &crate::sim::SimResult) -> Enc {
    let t = &r.tlb;
    e = e
        .u(t.accesses)
        .u(t.l1_hits)
        .u(t.l1_misses)
        .u(t.l2_hits)
        .u(t.l2_misses)
        .u(t.fills)
        .u(t.superpage_fills)
        .u(t.pb_hits);
    for bucket in t.coalesce_hist {
        e = e.u(bucket);
    }
    e.u(t.coalesce_overflow)
        .u(t.asid_flushes)
        .u(t.asid_entries_flushed)
        .u(r.walker.walks)
        .u(r.walker.total_latency)
        .u(r.walker.faults)
        .u(r.instructions)
        .u(r.walk_cycles)
        .u(r.data_stall_cycles)
        .u(r.l2_tlb_cycles)
        .u(r.oracle_mismatches)
}

pub(crate) fn dec_sim(d: &mut Dec<'_>) -> Option<crate::sim::SimResult> {
    let tlb = colt_tlb::stats::HierarchyStats {
        accesses: d.u()?,
        l1_hits: d.u()?,
        l1_misses: d.u()?,
        l2_hits: d.u()?,
        l2_misses: d.u()?,
        fills: d.u()?,
        superpage_fills: d.u()?,
        pb_hits: d.u()?,
        coalesce_hist: {
            let mut hist = [0u64; 8];
            for bucket in &mut hist {
                *bucket = d.u()?;
            }
            hist
        },
        coalesce_overflow: d.u()?,
        asid_flushes: d.u()?,
        asid_entries_flushed: d.u()?,
    };
    let walker = colt_memsim::walker::WalkerStats {
        walks: d.u()?,
        total_latency: d.u()?,
        faults: d.u()?,
    };
    Some(crate::sim::SimResult {
        tlb,
        walker,
        instructions: d.u()?,
        walk_cycles: d.u()?,
        data_stall_cycles: d.u()?,
        l2_tlb_cycles: d.u()?,
        oracle_mismatches: d.u()?,
    })
}

pub(crate) fn enc_kernel(e: Enc, k: &colt_os_mem::kernel::KernelStats) -> Enc {
    e.u(k.allocations)
        .u(k.pages_requested)
        .u(k.pages_populated)
        .u(k.physical_runs)
        .u(k.thp_allocs)
        .u(k.thp_fallbacks)
        .u(k.thp_splits)
        .u(k.compaction_runs)
        .u(k.pages_migrated)
        .u(k.demand_faults)
        .u(k.pages_reclaimed)
        .u(k.oom_kills)
        .u(k.compact_deferred)
        .u(k.thp_deferred_retries)
        .u(k.faults_injected)
        .u(k.policy_decisions)
        .u(k.policy_huge_grants)
        .u(k.policy_huge_denies)
        .u(k.policy_collapses_triggered)
        .u(k.policy_compactions_requested)
}

pub(crate) fn dec_kernel(d: &mut Dec<'_>) -> Option<colt_os_mem::kernel::KernelStats> {
    Some(colt_os_mem::kernel::KernelStats {
        allocations: d.u()?,
        pages_requested: d.u()?,
        pages_populated: d.u()?,
        physical_runs: d.u()?,
        thp_allocs: d.u()?,
        thp_fallbacks: d.u()?,
        thp_splits: d.u()?,
        compaction_runs: d.u()?,
        pages_migrated: d.u()?,
        demand_faults: d.u()?,
        pages_reclaimed: d.u()?,
        oom_kills: d.u()?,
        compact_deferred: d.u()?,
        thp_deferred_retries: d.u()?,
        faults_injected: d.u()?,
        policy_decisions: d.u()?,
        policy_huge_grants: d.u()?,
        policy_huge_denies: d.u()?,
        policy_collapses_triggered: d.u()?,
        policy_compactions_requested: d.u()?,
    })
}

impl JournalPayload for crate::sim::SimResult {
    fn encode(&self) -> String {
        enc_sim(Enc::new("sim1"), self).done()
    }
    fn decode(s: &str) -> Option<Self> {
        let mut d = Dec::new(s, "sim1")?;
        let r = dec_sim(&mut d)?;
        d.exhausted().then_some(r)
    }
}

impl JournalPayload for (crate::sim::SimResult, colt_os_mem::kernel::KernelStats) {
    fn encode(&self) -> String {
        enc_kernel(enc_sim(Enc::new("simker2"), &self.0), &self.1).done()
    }
    fn decode(s: &str) -> Option<Self> {
        // "simker2": KernelStats grew the five policy counters.
        let mut d = Dec::new(s, "simker2")?;
        let sim = dec_sim(&mut d)?;
        let kernel = dec_kernel(&mut d)?;
        d.exhausted().then_some((sim, kernel))
    }
}

// ---------------------------------------------------------------------
// Record codec.
// ---------------------------------------------------------------------

/// One parsed journal record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Fingerprint of the producing invocation.
    pub fp: String,
    /// Append sequence number.
    pub seq: u64,
    /// Cell label — the journal key within one experiment.
    pub label: String,
    /// `"ok"`, `"failed"`, or `"quarantined"`.
    pub outcome: String,
    /// Attempts the cell consumed (1 = first try).
    pub attempts: u64,
    /// Failure/quarantine reason ("" for `ok`).
    pub reason: String,
    /// Memory references the cell simulated (throughput metric).
    pub refs: u64,
    /// Seconds spent preparing the shared workload.
    pub prep_seconds: f64,
    /// Seconds the job ran.
    pub sim_seconds: f64,
    /// Encoded result ("" unless `ok`).
    pub payload: String,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else {
            out.push(ch);
        }
    }
    Some(out)
}

/// Extracts a quoted string field's raw (still escaped) bytes.
fn raw_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Find the closing quote, skipping escaped characters.
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&rest[..i]),
            _ => i += 1,
        }
    }
    None
}

fn str_field(line: &str, key: &str) -> Option<String> {
    unesc(raw_str_field(line, key)?)
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

fn f64_bits_field(line: &str, key: &str) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(&str_field(line, key)?, 16).ok()?))
}

/// Serializes one record as a single JSONL line (no trailing newline).
/// The `crc` field is CRC32 over every byte before the `,"crc"` key.
pub fn encode_record(r: &Record) -> String {
    let body = format!(
        "{{\"v\":{RECORD_VERSION},\"fp\":\"{}\",\"seq\":{},\"label\":\"{}\",\
         \"outcome\":\"{}\",\"attempts\":{},\"reason\":\"{}\",\"refs\":{},\
         \"prep\":\"{:016x}\",\"sim\":\"{:016x}\",\"payload\":\"{}\"",
        esc(&r.fp),
        r.seq,
        esc(&r.label),
        esc(&r.outcome),
        r.attempts,
        esc(&r.reason),
        r.refs,
        r.prep_seconds.to_bits(),
        r.sim_seconds.to_bits(),
        esc(&r.payload),
    );
    format!("{body},\"crc\":\"{:08x}\"}}", crc32(body.as_bytes()))
}

/// Why a journal line could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LineError {
    /// Structurally broken, truncated, or checksum mismatch.
    Corrupt(String),
    /// Valid checksum but a record version this build does not speak.
    Version(u64),
}

/// Parses one journal line, verifying structure and checksum.
pub fn parse_record(line: &str) -> Result<Record, LineError> {
    let line = line.trim_end_matches(['\r']);
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(LineError::Corrupt("not a JSON object".to_string()));
    }
    let Some(split) = line.rfind(",\"crc\":\"") else {
        return Err(LineError::Corrupt("missing crc field".to_string()));
    };
    let body = &line[..split];
    let tail = &line[split + ",\"crc\":\"".len()..];
    let Some(stored) = tail.strip_suffix("\"}") else {
        return Err(LineError::Corrupt("malformed crc field".to_string()));
    };
    // Exact string comparison, not a hex parse: `from_str_radix` is
    // case-insensitive, so a single bit flip turning `a` into `A`
    // inside the crc field would otherwise verify. Every writer emits
    // lowercase. (Flips anywhere in the body are caught by the crc
    // itself; the crc field is the only unprotected region.)
    let actual = format!("{:08x}", crc32(body.as_bytes()));
    if stored != actual {
        return Err(LineError::Corrupt(format!(
            "checksum mismatch (stored {stored}, computed {actual})"
        )));
    }
    let v = u64_field(body, "v")
        .ok_or_else(|| LineError::Corrupt("missing version".to_string()))?;
    if v != RECORD_VERSION {
        return Err(LineError::Version(v));
    }
    let field = |key: &str| {
        str_field(body, key)
            .ok_or_else(|| LineError::Corrupt(format!("missing field '{key}'")))
    };
    let num = |key: &str| {
        u64_field(body, key)
            .ok_or_else(|| LineError::Corrupt(format!("missing field '{key}'")))
    };
    Ok(Record {
        fp: field("fp")?,
        seq: num("seq")?,
        label: field("label")?,
        outcome: field("outcome")?,
        attempts: num("attempts")?,
        reason: field("reason")?,
        refs: num("refs")?,
        prep_seconds: f64_bits_field(body, "prep")
            .ok_or_else(|| LineError::Corrupt("missing field 'prep'".to_string()))?,
        sim_seconds: f64_bits_field(body, "sim")
            .ok_or_else(|| LineError::Corrupt("missing field 'sim'".to_string()))?,
        payload: field("payload")?,
    })
}

// ---------------------------------------------------------------------
// The journal itself.
// ---------------------------------------------------------------------

/// A completed cell replayed from the journal.
#[derive(Clone, Debug)]
pub struct Replayed {
    /// Encoded result payload.
    pub payload: String,
    /// Memory references the original run simulated.
    pub refs: u64,
    /// Original preparation seconds (bit-exact).
    pub prep_seconds: f64,
    /// Original job seconds (bit-exact).
    pub sim_seconds: f64,
}

/// What `Journal::open` found in an existing journal.
#[derive(Clone, Debug, Default)]
pub struct OpenReport {
    /// `ok` records with a matching fingerprint — replayable.
    pub replayed: usize,
    /// Valid records ignored because their fingerprint differs from
    /// this invocation's flags.
    pub fingerprint_mismatches: usize,
    /// `failed`/`quarantined` records (their cells re-run on resume).
    pub failed_records: usize,
    /// Lines that failed structure or checksum validation.
    pub corrupt_lines: usize,
    /// Valid-checksum lines with an unsupported record version.
    pub version_skipped: usize,
    /// Where the unusable lines were quarantined (if any were).
    pub quarantined_to: Option<PathBuf>,
}

impl OpenReport {
    /// True when the open had anything noteworthy to report.
    pub fn noisy(&self) -> bool {
        self.fingerprint_mismatches > 0
            || self.corrupt_lines > 0
            || self.version_skipped > 0
    }
}

struct Inner {
    file: Box<dyn crate::vfs::VfsFile>,
    seq: u64,
    appended: u64,
    append_retries: u64,
    append_failures: u64,
    seen: HashSet<String>,
}

/// Append-only, fsync-per-record journal for one experiment's sweep.
pub struct Journal {
    path: PathBuf,
    fingerprint: String,
    replayed: HashMap<String, Replayed>,
    report: OpenReport,
    crash_after: Option<u64>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("fingerprint", &self.fingerprint)
            .field("replayed", &self.replayed.len())
            .finish()
    }
}

/// First free `<path>.corrupt-<n>` sibling.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut n = 1;
    loop {
        let candidate = PathBuf::from(format!("{}.corrupt-{n}", path.display()));
        if !candidate.exists() {
            return candidate;
        }
        n += 1;
    }
}

fn parse_crash_after() -> Option<u64> {
    let raw = std::env::var("COLT_CRASH_AFTER_CELLS").ok()?;
    match raw.parse::<u64>() {
        Ok(0) | Err(_) => {
            eprintln!(
                "warning: COLT_CRASH_AFTER_CELLS='{raw}' is not a positive integer; \
                 crash injection disabled"
            );
            None
        }
        Ok(n) => Some(n),
    }
}

impl Journal {
    /// Opens (resume) or starts fresh (non-resume) the journal for
    /// `experiment` under `dir`, validating every existing line.
    ///
    /// On resume, corrupt/version-bumped lines are quarantined to
    /// `<journal>.corrupt-<n>`, the journal is rewritten with only the
    /// valid records, and `ok` records matching `fingerprint` become
    /// replayable. On a fresh open an existing journal is truncated
    /// (after whole-file quarantine if it contained corruption, so
    /// evidence is never clobbered).
    pub fn open(
        dir: &Path,
        experiment: &str,
        fingerprint: String,
        resume: bool,
    ) -> std::io::Result<Journal> {
        let path = dir.join(format!("{experiment}.jsonl"));
        let mut report = OpenReport::default();
        let mut replayed = HashMap::new();
        let mut kept_lines: Vec<String> = Vec::new();
        let mut bad_lines: Vec<String> = Vec::new();

        let fs = crate::vfs::active();
        crate::vfs::acct("journal", fs.create_dir_all(dir))?;
        if path.exists() {
            // Lossy decoding on purpose: a bit flip that lands in a
            // UTF-8 continuation byte must surface as a corrupt line
            // (the CRC catches the replacement character), not abort
            // the whole open.
            let raw = String::from_utf8_lossy(&crate::vfs::acct(
                "journal",
                fs.read(&path),
            )?)
            .into_owned();
            for line in raw.lines().filter(|l| !l.trim().is_empty()) {
                match parse_record(line) {
                    Ok(rec) => {
                        if !resume {
                            continue;
                        }
                        kept_lines.push(line.to_string());
                        if rec.fp != fingerprint {
                            report.fingerprint_mismatches += 1;
                            if report.fingerprint_mismatches <= 3 {
                                eprintln!(
                                    "note: --resume ignoring journal record for \
                                     '{}': fingerprint {} does not match this \
                                     invocation ({}) — flags differ, cell will \
                                     re-run",
                                    rec.label, rec.fp, fingerprint
                                );
                            }
                        } else if rec.outcome == "ok" {
                            report.replayed += 1;
                            replayed.insert(
                                rec.label.clone(),
                                Replayed {
                                    payload: rec.payload,
                                    refs: rec.refs,
                                    prep_seconds: rec.prep_seconds,
                                    sim_seconds: rec.sim_seconds,
                                },
                            );
                        } else {
                            report.failed_records += 1;
                            eprintln!(
                                "note: --resume re-running cell '{}' (journaled \
                                 outcome: {}, attempts {}, reason: {})",
                                rec.label, rec.outcome, rec.attempts, rec.reason
                            );
                        }
                    }
                    Err(LineError::Corrupt(why)) => {
                        report.corrupt_lines += 1;
                        bad_lines.push(line.to_string());
                        eprintln!(
                            "warning: corrupt journal line in {} ({why}); \
                             quarantining, cell will re-run",
                            path.display()
                        );
                    }
                    Err(LineError::Version(v)) => {
                        report.version_skipped += 1;
                        bad_lines.push(line.to_string());
                        eprintln!(
                            "warning: journal record version {v} in {} is not \
                             supported by this build (wants {RECORD_VERSION}); \
                             quarantining, cell will re-run",
                            path.display()
                        );
                    }
                }
            }
            if report.fingerprint_mismatches > 3 {
                eprintln!(
                    "note: --resume ignored {} fingerprint-mismatched record(s) \
                     in total",
                    report.fingerprint_mismatches
                );
            }
            if !bad_lines.is_empty() {
                // If this open's read came back bit-flipped, the CRCs
                // above just detected it.
                let _ = crate::io_faults::confirm_flip(&path);
                let qpath = quarantine_path(&path);
                {
                    let mut qf = crate::vfs::acct("journal", fs.create(&qpath))?;
                    let mut buf = String::new();
                    for line in &bad_lines {
                        buf.push_str(line);
                        buf.push('\n');
                    }
                    crate::vfs::acct("journal", qf.write_all(buf.as_bytes()))?;
                    crate::vfs::acct("journal", qf.sync_data())?;
                }
                eprintln!(
                    "warning: {} unusable journal line(s) quarantined to {}",
                    bad_lines.len(),
                    qpath.display()
                );
                report.quarantined_to = Some(qpath);
            }
        }

        // Rewrite the journal to exactly the kept records (empty on a
        // fresh run), via temp file + rename so a crash here cannot
        // produce a half-written journal. The tmp name follows the
        // `*.tmp-*` convention so a crash between create and rename is
        // caught by the startup litter sweep.
        let tmp = crate::artifact::unique_tmp(&path);
        let rewritten = (|| {
            let mut tf = crate::vfs::acct("journal", fs.create(&tmp))?;
            let mut buf = String::new();
            for line in &kept_lines {
                buf.push_str(line);
                buf.push('\n');
            }
            crate::vfs::acct("journal", tf.write_all(buf.as_bytes()))?;
            crate::vfs::acct("journal", tf.sync_data())?;
            crate::vfs::acct("journal", fs.rename(&tmp, &path))
        })();
        if let Err(e) = rewritten {
            if let Err(re) = fs.remove_file(&tmp) {
                let _ = crate::io_faults::account("journal", &re);
            }
            return Err(e);
        }
        if let Err(e) = fs.sync_dir(dir) {
            // Ignored (the rewrite is already consistent at the file
            // level) but accounted.
            let _ = crate::io_faults::account("journal", &e);
        }

        let file = crate::vfs::acct("journal", fs.open_append(&path))?;
        Ok(Journal {
            path,
            fingerprint,
            replayed,
            report,
            crash_after: parse_crash_after(),
            inner: Mutex::new(Inner {
                file,
                seq: kept_lines.len() as u64,
                appended: 0,
                append_retries: 0,
                append_failures: 0,
                seen: HashSet::new(),
            }),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the open pass found (resume statistics).
    pub fn open_report(&self) -> &OpenReport {
        &self.report
    }

    /// Number of records appended by *this* process.
    pub fn appended(&self) -> u64 {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).appended
    }

    /// `(retries, exhausted failures)` of the append path — the
    /// journal's fault-accounting counters.
    pub fn append_faults(&self) -> (u64, u64) {
        let inner =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        (inner.append_retries, inner.append_failures)
    }

    /// The journaled result for `label`, if a valid matching `ok`
    /// record was replayed at open.
    pub fn completed(&self, label: &str) -> Option<&Replayed> {
        self.replayed.get(label)
    }

    /// Appends one finished-cell record, fsyncing before returning, so
    /// the record survives any subsequent process death. `outcome` is
    /// `"ok"` (with `payload`) or `"failed"`/`"quarantined"` (with
    /// `reason`).
    pub fn append(
        &self,
        label: &str,
        outcome: &str,
        attempts: u64,
        reason: &str,
        payload: &str,
        refs: u64,
        prep_seconds: f64,
        sim_seconds: f64,
    ) -> std::io::Result<()> {
        let mut inner =
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.seen.insert(label.to_string()) {
            eprintln!(
                "warning: journal {} saw cell label '{label}' twice in one run; \
                 resume keys on labels, the later record wins",
                self.path.display()
            );
        }
        let rec = Record {
            fp: self.fingerprint.clone(),
            seq: inner.seq,
            label: label.to_string(),
            outcome: outcome.to_string(),
            attempts,
            reason: reason.to_string(),
            refs,
            prep_seconds,
            sim_seconds,
            payload: payload.to_string(),
        };
        let line = encode_record(&rec);
        // Appends retry with backoff: a transient disk fault costs this
        // cell a few milliseconds, not its durability. A failed attempt
        // may have landed a torn prefix of the line, so every retry is
        // preceded by a newline — the fragment becomes its own line,
        // which the per-line CRC quarantines at the next open, while the
        // retried record stays intact. If every attempt fails only this
        // cell's record is lost: it simply re-runs on `--resume`.
        let mut dirty = false;
        let mut outcome_io = Ok(());
        for attempt in 0..3u32 {
            if attempt > 0 {
                inner.append_retries += 1;
                std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
            }
            let payload =
                if dirty { format!("\n{line}\n") } else { format!("{line}\n") };
            let wrote = (|| {
                crate::vfs::acct("journal", inner.file.write_all(payload.as_bytes()))?;
                crate::vfs::acct("journal", inner.file.flush())?;
                crate::vfs::acct("journal", inner.file.sync_data())
            })();
            match wrote {
                Ok(()) => {
                    outcome_io = Ok(());
                    break;
                }
                Err(e) => {
                    dirty = true;
                    outcome_io = Err(e);
                }
            }
        }
        if let Err(e) = outcome_io {
            inner.append_failures += 1;
            return Err(e);
        }
        inner.seq += 1;
        inner.appended += 1;
        if Some(inner.appended) == self.crash_after {
            eprintln!(
                "COLT_CRASH_AFTER_CELLS: aborting after {} journaled cell(s)",
                inner.appended
            );
            std::process::abort();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("colt-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append_ok(j: &Journal, label: &str, payload: &str) {
        j.append(label, "ok", 1, "", payload, 1000, 0.5, 0.25).unwrap();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn fingerprint_bucket_is_stable_and_in_range() {
        for shards in [1, 2, 8, 13] {
            for key in ["a1b2c3d4", "00000000", "fig18;accesses=30000"] {
                let b = fingerprint_bucket(key, shards);
                assert!(b < shards.max(1));
                assert_eq!(b, fingerprint_bucket(key, shards), "deterministic");
            }
        }
        assert_eq!(fingerprint_bucket("anything", 0), 0);
        assert_eq!(fingerprint_bucket("anything", 1), 0);
        // Distinct keys actually spread across buckets.
        let spread: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| fingerprint_bucket(&fingerprint_of(&format!("key-{i}")), 8))
            .collect();
        assert!(spread.len() > 1, "32 keys must not all land in one of 8 buckets");
    }

    #[test]
    fn record_roundtrip_preserves_everything() {
        let rec = Record {
            fp: "deadbeef".to_string(),
            seq: 7,
            label: "exp/Mcf/CoLT-All/r0.050".to_string(),
            outcome: "ok".to_string(),
            attempts: 2,
            reason: "a \"quoted\"\nreason\twith|specials;".to_string(),
            refs: 11_000,
            prep_seconds: 0.1 + 0.2, // not exactly representable — bit-exact anyway
            sim_seconds: 3.25,
            payload: "sim1|1|2|3".to_string(),
        };
        let line = encode_record(&rec);
        let back = parse_record(&line).unwrap();
        assert_eq!(back.fp, rec.fp);
        assert_eq!(back.seq, rec.seq);
        assert_eq!(back.label, rec.label);
        assert_eq!(back.outcome, rec.outcome);
        assert_eq!(back.attempts, rec.attempts);
        assert_eq!(back.reason, rec.reason);
        assert_eq!(back.refs, rec.refs);
        assert_eq!(back.prep_seconds.to_bits(), rec.prep_seconds.to_bits());
        assert_eq!(back.sim_seconds.to_bits(), rec.sim_seconds.to_bits());
        assert_eq!(back.payload, rec.payload);
    }

    #[test]
    fn payload_helpers_roundtrip_losslessly() {
        let s = Enc::new("t1").u(42).f(0.1 + 0.2).s("a|b;c\\d").done();
        let mut d = Dec::new(&s, "t1").unwrap();
        assert_eq!(d.u(), Some(42));
        assert_eq!(d.f().map(f64::to_bits), Some((0.1f64 + 0.2).to_bits()));
        assert_eq!(d.s().as_deref(), Some("a|b;c\\d"));
        assert!(d.exhausted());
        assert!(Dec::new(&s, "t2").is_none(), "wrong tag must not decode");
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::decode(&v.encode()), Some(v));
    }

    #[test]
    fn truncated_garbage_flipped_crc_and_version_bump_are_quarantined() {
        let dir = tmpdir("robust");
        {
            let j = Journal::open(&dir, "exp", "aaaa0001".into(), false).unwrap();
            append_ok(&j, "cell/one", "u1|1");
            append_ok(&j, "cell/two", "u1|2");
        }
        let path = dir.join("exp.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);

        // Flip a checksum digit on line 2, add garbage, a truncated
        // line (simulated mid-write kill), and a version-bumped record.
        let mut flipped = lines[1].to_string();
        let pos = flipped.rfind("\"crc\":\"").unwrap() + "\"crc\":\"".len();
        let old = flipped.as_bytes()[pos];
        let new = if old == b'0' { b'1' } else { b'0' };
        unsafe { flipped.as_bytes_mut()[pos] = new };

        let vrec = Record {
            fp: "aaaa0001".into(),
            seq: 9,
            label: "cell/future".into(),
            outcome: "ok".into(),
            attempts: 1,
            reason: String::new(),
            refs: 0,
            prep_seconds: 0.0,
            sim_seconds: 0.0,
            payload: "u1|9".into(),
        };
        let vline = encode_record(&vrec);
        // Re-stamp the version while keeping the checksum valid.
        let body = vline[..vline.rfind(",\"crc\"").unwrap()]
            .replacen("{\"v\":1,", "{\"v\":99,", 1);
        let vline = format!("{body},\"crc\":\"{:08x}\"}}", crc32(body.as_bytes()));

        let truncated = &lines[0][..lines[0].len() / 2];
        let doctored = format!(
            "{}\n{}\nnot json at all\n{}\n{}\n",
            lines[0], flipped, vline, truncated
        );
        std::fs::write(&path, doctored).unwrap();

        let j = Journal::open(&dir, "exp", "aaaa0001".into(), true).unwrap();
        let report = j.open_report();
        assert_eq!(report.replayed, 1, "only the intact record replays");
        assert!(j.completed("cell/one").is_some());
        assert!(j.completed("cell/two").is_none(), "flipped checksum never reused");
        assert!(j.completed("cell/future").is_none(), "version bump never reused");
        assert_eq!(report.corrupt_lines, 3, "flipped + garbage + truncated");
        assert_eq!(report.version_skipped, 1);
        let qpath = report.quarantined_to.clone().expect("quarantine file written");
        let quarantined = std::fs::read_to_string(&qpath).unwrap();
        assert_eq!(quarantined.lines().count(), 4);
        // The journal itself was rewritten corruption-free.
        let clean = std::fs::read_to_string(&path).unwrap();
        assert_eq!(clean.lines().count(), 1);
        parse_record(clean.lines().next().unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_ignored_never_reused() {
        let dir = tmpdir("fp");
        {
            let j = Journal::open(&dir, "exp", "aaaa0001".into(), false).unwrap();
            append_ok(&j, "cell/one", "u1|1");
        }
        let j = Journal::open(&dir, "exp", "bbbb0002".into(), true).unwrap();
        assert_eq!(j.open_report().fingerprint_mismatches, 1);
        assert!(j.completed("cell/one").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_and_quarantined_records_rerun_on_resume() {
        let dir = tmpdir("failed");
        {
            let j = Journal::open(&dir, "exp", "aaaa0001".into(), false).unwrap();
            append_ok(&j, "cell/good", "u1|1");
            j.append("cell/bad", "failed", 1, "boom", "", 0, 0.0, 0.0).unwrap();
            j.append("cell/worse", "quarantined", 3, "deadline", "", 0, 0.0, 0.0)
                .unwrap();
        }
        let j = Journal::open(&dir, "exp", "aaaa0001".into(), true).unwrap();
        assert_eq!(j.open_report().replayed, 1);
        assert_eq!(j.open_report().failed_records, 2);
        assert!(j.completed("cell/bad").is_none());
        assert!(j.completed("cell/worse").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_truncates_but_resume_keeps() {
        let dir = tmpdir("fresh");
        {
            let j = Journal::open(&dir, "exp", "aaaa0001".into(), false).unwrap();
            append_ok(&j, "cell/one", "u1|1");
        }
        {
            let j = Journal::open(&dir, "exp", "aaaa0001".into(), true).unwrap();
            assert_eq!(j.open_report().replayed, 1);
        }
        let j = Journal::open(&dir, "exp", "aaaa0001".into(), false).unwrap();
        assert_eq!(j.open_report().replayed, 0);
        assert!(j.completed("cell/one").is_none());
        assert_eq!(
            std::fs::read_to_string(dir.join("exp.jsonl")).unwrap().len(),
            0,
            "fresh open starts an empty journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn torture_record() -> Record {
        Record {
            fp: "deadbeef".to_string(),
            seq: 42,
            label: "pressure/Gobmk/CoLT-All/r0.050".to_string(),
            outcome: "ok".to_string(),
            attempts: 2,
            reason: "escaped \"reason\"\twith\nbreaks".to_string(),
            refs: 123_456,
            prep_seconds: 1.25,
            sim_seconds: 0.0625,
            payload: "sim;l1h=9;l2h=3;path\\with\\slashes".to_string(),
        }
    }

    /// Codec torture: a bit flip at EVERY position of an encoded line
    /// must never panic and never decode to different content. (Most
    /// flips land in the crc-covered body; flips inside the crc field
    /// itself are caught by the strict lowercase-hex comparison.)
    #[test]
    fn record_decode_never_accepts_a_flipped_bit() {
        let line = encode_record(&torture_record());
        let bytes = line.as_bytes();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.to_vec();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            // Journal reads are lossy-UTF-8 on purpose (flips in
            // continuation bytes must surface as corrupt lines, not
            // abort the open); mirror that here.
            let text = String::from_utf8_lossy(&corrupt).into_owned();
            match parse_record(&text) {
                Err(_) => {}
                Ok(decoded) => assert_eq!(
                    encode_record(&decoded),
                    line,
                    "bit {bit} flipped silently into a different record"
                ),
            }
        }
    }

    /// Truncation at every prefix length is rejected — a torn journal
    /// tail can never replay as a completed cell.
    #[test]
    fn record_decode_rejects_every_truncation() {
        let line = encode_record(&torture_record());
        for len in 0..line.len() {
            assert!(
                parse_record(&line[..len]).is_err(),
                "a {len}-byte prefix parsed as a whole record"
            );
        }
    }
}
