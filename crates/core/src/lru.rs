//! A tiny string-keyed LRU map for the resident-process caches.
//!
//! A one-shot `repro` invocation can afford caches that only grow — the
//! process dies minutes later. `repro serve` cannot: the in-memory
//! preparation cache, the per-shard prepared-instance pools, and the
//! sweep-result cache all live for the lifetime of the server, so each
//! is bounded by one of these maps and evicts least-recently-used
//! entries past its capacity (evictions are counted and reported, never
//! silent).
//!
//! The implementation is a `VecDeque` scanned linearly: capacities are
//! tens-to-hundreds of entries whose values are multi-megabyte
//! `Arc<PreparedWorkload>`s or whole result artifacts, so the O(n) scan
//! is noise next to what the entries themselves cost to make. `const`
//! constructors keep it usable in `static Mutex<LruMap<_>>` cells.

use std::collections::VecDeque;

/// String-keyed LRU map. Front of the deque is least-recently-used,
/// back is most-recently-used.
pub struct LruMap<V> {
    cap: Option<usize>,
    entries: VecDeque<(String, V)>,
}

impl<V> LruMap<V> {
    /// An unbounded map (capacity resolved later via [`set_cap`]).
    ///
    /// [`set_cap`]: LruMap::set_cap
    pub const fn unbounded() -> Self {
        LruMap { cap: None, entries: VecDeque::new() }
    }

    /// A map that holds at most `cap` entries.
    pub const fn bounded(cap: usize) -> Self {
        LruMap { cap: Some(cap), entries: VecDeque::new() }
    }

    /// Sets (or clears) the capacity, evicting LRU-first down to the new
    /// bound. Returns how many entries were evicted.
    pub fn set_cap(&mut self, cap: Option<usize>) -> u64 {
        self.cap = cap;
        self.trim()
    }

    /// The current capacity (`None` = unbounded).
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up and, on a hit, marks it most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos).expect("position came from iter");
        self.entries.push_back(entry);
        self.entries.back().map(|(_, v)| v)
    }

    /// Looks `key` up without touching the recency order (for stats and
    /// tests).
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, marking it most-recently-used, then
    /// evicts LRU-first past the capacity. Returns how many entries were
    /// evicted.
    pub fn insert(&mut self, key: String, value: V) -> u64 {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.push_back((key, value));
        self.trim()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates entries from least- to most-recently-used without
    /// touching the recency order (for persistence at graceful drain).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    fn trim(&mut self) -> u64 {
        let Some(cap) = self.cap else { return 0 };
        let mut evicted = 0;
        while self.entries.len() > cap {
            self.entries.pop_front();
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_peek_round_trip() {
        let mut m: LruMap<u32> = LruMap::unbounded();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), 0);
        assert_eq!(m.insert("b".into(), 2), 0);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.peek("b"), Some(&2));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used_first() {
        let mut m: LruMap<u32> = LruMap::bounded(2);
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        // Touch "a": it becomes MRU, so the next insert evicts "b".
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.insert("c".into(), 3), 1);
        assert!(m.peek("a").is_some());
        assert!(m.peek("b").is_none(), "the LRU entry is the one evicted");
        assert!(m.peek("c").is_some());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict_and_refreshes_recency() {
        let mut m: LruMap<u32> = LruMap::bounded(2);
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.insert("a".into(), 10), 0, "replacement is not an eviction");
        assert_eq!(m.len(), 2);
        assert_eq!(m.peek("a"), Some(&10));
        // "a" was refreshed, so "b" is now the LRU victim.
        m.insert("c".into(), 3);
        assert!(m.peek("b").is_none());
        assert!(m.peek("a").is_some());
    }

    #[test]
    fn shrinking_the_capacity_trims_and_counts() {
        let mut m: LruMap<u32> = LruMap::unbounded();
        for i in 0..5 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.set_cap(Some(2)), 3);
        assert_eq!(m.len(), 2);
        assert!(m.peek("k3").is_some() && m.peek("k4").is_some());
        assert_eq!(m.set_cap(None), 0);
    }
}
