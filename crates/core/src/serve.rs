//! `repro serve` — a resident translation/sweep server over TCP.
//!
//! The ROADMAP's north star is a production-scale system serving heavy
//! traffic; this module is the serving leg. A long-running process
//! (std-only threads + TCP, line-delimited JSON requests and responses)
//! holds a pool of prepared simulation instances sharded by
//! configuration fingerprint and answers two kinds of work:
//!
//! * **translate** — simulate one (benchmark, TLB config, scenario)
//!   cell. Requests are pulled off a *bounded* dispatch queue in
//!   batches, unique preparations are resolved once per batch through
//!   the per-shard pools (backed by [`snapshot_cache`] for warm prep
//!   and disk snapshots), and the batch fans out onto the existing
//!   work-stealing runner via [`runner::run_tasks_service`].
//! * **sweep** — run a full named experiment (`fig18`, `table1`, …) and
//!   return its CSV bytes. Responses are cached in an LRU keyed by the
//!   sweep fingerprint ([`ExperimentOptions::fingerprint`]), identical
//!   in-flight requests are coalesced behind a single leader
//!   (single-flight), and the bytes carry a determinism guarantee: a
//!   sweep served over the socket is byte-identical to the same sweep
//!   run directly (`repro <exp> --csv`), because both route through
//!   [`run_named`] and [`sweep_csv`].
//!
//! Resource lifetime is the design center — a resident process cannot
//! rely on dying before its caches matter:
//!
//! * every cache is a bounded [`LruMap`] (shard pools, result cache,
//!   and the snapshot cache's own `COLT_SNAPSHOT_MEM_CAP` bound),
//! * the dispatch queue is bounded; a full queue is a *polite* `busy`
//!   rejection, not an unbounded pile-up (backpressure),
//! * each connection has a request quota; past it, requests are
//!   politely rejected with `"rejected": "quota"`,
//! * runner metrics and snapshot-cache stats are drained after every
//!   batch/sweep into fixed-size counters, so nothing grows with
//!   uptime.
//!
//! ## Protocol
//!
//! One JSON object per line in, one JSON object per line out:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"translate","benchmark":"Gobmk","config":"colt_all",
//!  "scenario":"default","accesses":20000,"seed":24301}
//! {"op":"sweep","experiment":"fig18","accesses":30000,
//!  "bench":"Gobmk,Bzip2","cores":1}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok": true|false`; rejections carry
//! `"rejected": "quota"|"busy"|"shed"|"too_large"|"deadline"|"malformed"`
//! so clients can distinguish overload from errors. Requests may carry
//! `"deadline_ms"` (per-request deadline, clamped to the server bound)
//! and sweeps an `"idem"` idempotency key so retried requests provably
//! coalesce onto the original single-flight leader. See DESIGN.md §13
//! for the serving architecture, §15 for the chaos-hardening layer
//! ([`chaos`], deadlines, shedding, graceful drain), and `repro
//! serve-bench` ([`crate::serve_bench`]) for the load generator.

use crate::experiments::{run_named, ExperimentOptions};
use crate::journal::{fingerprint_bucket, fingerprint_of};
use crate::lru::LruMap;
use crate::runner::{self, CellOutcome, SweepTask};
use crate::sim::{self, SimConfig, SimResult};
use crate::snapshot_cache;
use colt_os_mem::policy::PolicyKind;
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::{benchmark, BenchmarkSpec};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub mod chaos;
pub mod json;

fn relock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Server tuning. Every bound exists because the process is resident:
/// an unbounded queue, pool, or cache is a slow-motion OOM under heavy
/// traffic.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port (0 = ephemeral; the chosen port is printed and written
    /// to `port_file`).
    pub port: u16,
    /// Where to write the bound port (for scripts that start the server
    /// with `--port 0` and need to find it).
    pub port_file: Option<PathBuf>,
    /// Worker threads for batched dispatch and sweeps.
    pub jobs: usize,
    /// Requests each connection may issue before polite rejection.
    pub quota: u64,
    /// Bound on the translate dispatch queue; a full queue rejects with
    /// `"rejected": "busy"` (backpressure, not buffering).
    pub queue_cap: usize,
    /// Concurrent connections accepted before rejecting new ones.
    pub max_conns: usize,
    /// Prepared-pool shards (locks); unrelated configurations hash to
    /// different shards and never contend.
    pub shards: usize,
    /// Prepared instances each shard retains (LRU).
    pub shard_cap: usize,
    /// Sweep results retained in the LRU result cache.
    pub result_cache_cap: usize,
    /// Translate requests dispatched per batch.
    pub batch_max: usize,
    /// Upper bound on per-request access budgets (a client asking for
    /// billions of references is clamped, loudly, in the response).
    pub max_accesses: u64,
    /// Longest request line accepted, in bytes; past it the line is
    /// drained and rejected with `"rejected": "too_large"` (the
    /// connection stays usable).
    pub max_line_bytes: usize,
    /// Server-wide ceiling on per-request deadlines. Requests may ask
    /// for less via `"deadline_ms"`; past the deadline the request is
    /// rejected with `"rejected": "deadline"` and its queue slot freed.
    pub deadline_ms: u64,
    /// Dispatch-queue high-water mark past which sweeps are shed
    /// (`"rejected": "shed"`) while translates still queue — load is
    /// shed by op priority. `None` derives ~3/4 of `queue_cap`.
    pub queue_high_water: Option<usize>,
    /// How long a partially written request line may stall before the
    /// client is evicted (and how long a response write may block).
    pub slow_client_ms: u64,
    /// Graceful-drain budget at shutdown: how long to wait for
    /// in-flight sweep leaders before declaring the drain dirty.
    pub drain_ms: u64,
    /// Where to persist the sweep result cache at graceful drain (and
    /// reload it from at startup). `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic network-fault injection (soak harness); `None` in
    /// production.
    pub chaos: Option<chaos::ChaosConfig>,
    /// Suppress the listening/summary lines (tests).
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 0,
            port_file: None,
            jobs: crate::experiments::default_jobs(),
            quota: 1_000_000,
            queue_cap: 256,
            max_conns: 64,
            shards: 8,
            shard_cap: 8,
            result_cache_cap: 64,
            batch_max: 64,
            max_accesses: 10_000_000,
            max_line_bytes: 64 * 1024,
            deadline_ms: 600_000,
            queue_high_water: None,
            slow_client_ms: 10_000,
            drain_ms: 30_000,
            cache_dir: None,
            chaos: None,
            quiet: false,
        }
    }
}

impl ServeConfig {
    fn normalized(mut self) -> Self {
        self.jobs = self.jobs.max(1);
        self.shards = self.shards.max(1);
        self.shard_cap = self.shard_cap.max(1);
        self.result_cache_cap = self.result_cache_cap.max(1);
        self.batch_max = self.batch_max.max(1);
        self.max_conns = self.max_conns.max(1);
        self.max_accesses = self.max_accesses.max(1);
        self.max_line_bytes = self.max_line_bytes.max(64);
        self.deadline_ms = self.deadline_ms.max(1);
        self.slow_client_ms = self.slow_client_ms.max(1);
        self
    }

    /// The resolved shedding threshold. An explicit `Some(0)` sheds
    /// every sweep (tests); with no explicit mark a zero-capacity queue
    /// (backpressure tests) never sheds — translates already bounce.
    fn high_water(&self) -> usize {
        match self.queue_high_water {
            Some(n) => n,
            None if self.queue_cap == 0 => usize::MAX,
            None => (self.queue_cap * 3 / 4).max(1),
        }
    }
}

// ---------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    translates: AtomicU64,
    sweeps: AtomicU64,
    sweep_cache_hits: AtomicU64,
    sweep_coalesced: AtomicU64,
    sweep_cache_evictions: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_conns: AtomicU64,
    failed_cells: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    prep_mem_hits: AtomicU64,
    prep_disk_hits: AtomicU64,
    prep_misses: AtomicU64,
    prep_evictions: AtomicU64,
    shard_hits: AtomicU64,
    shard_evictions: AtomicU64,
    bad_requests: AtomicU64,
    rejected_malformed: AtomicU64,
    rejected_too_large: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_shed: AtomicU64,
    evicted_slow: AtomicU64,
    panics: AtomicU64,
    idem_hits: AtomicU64,
}

impl Counters {
    fn add(&self, field: &AtomicU64, n: u64) {
        let _ = self;
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// One coalesced in-flight sweep: the leader computes, followers wait
/// on the condvar and share the leader's bytes.
struct Flight {
    done: Mutex<Option<Result<Arc<String>, String>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { done: Mutex::new(None), cv: Condvar::new() }
    }
}

/// One queued translate request: the work plus where to send its result.
struct TranslateJob {
    scenario: Scenario,
    spec: BenchmarkSpec,
    sim_cfg: SimConfig,
    /// Past this instant the work is dropped unrun (the runner checks
    /// at dispatch) and the handler answers `"rejected": "deadline"`.
    deadline: Instant,
    reply: mpsc::Sender<Result<SimResult, String>>,
}

/// Shared server state; everything handler, dispatcher, and accept
/// threads touch.
pub struct ServerState {
    cfg: ServeConfig,
    port: u16,
    shards: Vec<Mutex<LruMap<Arc<PreparedWorkload>>>>,
    results: Mutex<LruMap<Arc<String>>>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
    /// Sweeps run one at a time: the experiment drivers push into the
    /// process-global metrics registry, and serializing them keeps the
    /// drain attributable (and the peak footprint bounded).
    sweep_gate: Mutex<()>,
    queue: Mutex<VecDeque<TranslateJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    active_conns: AtomicU64,
    /// Sweep leaders whose compute thread has not yet landed its bytes;
    /// graceful drain waits for this to hit zero.
    inflight_sweeps: AtomicU64,
    /// Idempotency keys seen recently, mapped to the sweep cache key
    /// they resolved to (proves retried requests coalesce).
    idem: Mutex<LruMap<String>>,
    /// Armed only by the `repro chaos-serve` soak harness.
    chaos: Option<Mutex<chaos::ChaosPlan>>,
    c: Counters,
}

impl ServerState {
    /// The port the server bound.
    pub fn port(&self) -> u16 {
        self.port
    }

    fn absorb_cache_stats(&self) {
        let s = snapshot_cache::take_stats();
        self.c.add(&self.c.prep_mem_hits, s.mem_hits);
        self.c.add(&self.c.prep_disk_hits, s.disk_hits);
        self.c.add(&self.c.prep_misses, s.misses);
        self.c.add(&self.c.prep_evictions, s.mem_evictions);
    }
}

// ---------------------------------------------------------------------
// The determinism anchor
// ---------------------------------------------------------------------

/// The exact bytes `repro <experiment> --csv` prints: each table's CSV
/// followed by one newline. The serve determinism guarantee is stated
/// against this function — the socket path and the direct path both
/// call it, so they cannot drift apart.
///
/// # Errors
/// A message for an unknown experiment name (nothing runs).
pub fn sweep_csv(experiment: &str, opts: &ExperimentOptions) -> Result<String, String> {
    let run = run_named(experiment, opts)
        .ok_or_else(|| format!("unknown experiment '{experiment}'"))?;
    let mut out = String::new();
    for table in &run.output.tables {
        out.push_str(&table.to_csv());
        out.push('\n');
    }
    Ok(out)
}

/// The experiment options a sweep request resolves to. Shared with
/// `serve-bench --verify-sweep`, which must build the *identical*
/// options for its direct in-process run.
pub fn sweep_options(
    accesses: Option<u64>,
    bench: Option<&str>,
    cores: Option<u64>,
    policy: PolicyKind,
    jobs: usize,
    max_accesses: u64,
) -> ExperimentOptions {
    let mut opts = ExperimentOptions { jobs: jobs.max(1), policy, ..ExperimentOptions::default() };
    if let Some(a) = accesses {
        opts.accesses = a.clamp(1, max_accesses);
    }
    if let Some(list) = bench {
        let names: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !names.is_empty() {
            opts.benchmarks = Some(names);
        }
    }
    if let Some(c) = cores {
        opts.cores = (c.max(1)) as usize;
    }
    opts
}

/// The result-cache key for one sweep request. The fingerprint alone is
/// an 8-hex CRC32 — cheap, but collisions are conceivable — so the key
/// keeps the experiment name alongside it.
fn sweep_key(experiment: &str, opts: &ExperimentOptions) -> String {
    format!("{experiment};{}", opts.fingerprint(experiment))
}

// ---------------------------------------------------------------------
// Startup / shutdown
// ---------------------------------------------------------------------

/// A started server: the bound port plus the threads to join.
pub struct ServerHandle {
    /// The port actually bound (useful with `port: 0`).
    pub port: u16,
    state: Arc<ServerState>,
    accept: std::thread::JoinHandle<()>,
    dispatcher: std::thread::JoinHandle<()>,
}

/// What the server did over its lifetime, printed at clean shutdown.
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Total requests parsed (all ops).
    pub requests: u64,
    /// Translate cells simulated.
    pub translates: u64,
    /// Sweeps requested (cached or computed).
    pub sweeps: u64,
    /// Sweeps answered from the LRU result cache.
    pub sweep_cache_hits: u64,
    /// Sweeps coalesced behind an identical in-flight leader.
    pub sweep_coalesced: u64,
    /// Requests politely rejected over the per-connection quota.
    pub rejected_quota: u64,
    /// Requests politely rejected under backpressure (full queue).
    pub rejected_busy: u64,
    /// Sweeps shed past the dispatch-queue high-water mark.
    pub rejected_shed: u64,
    /// Request lines rejected for exceeding the line-length bound.
    pub rejected_too_large: u64,
    /// Requests that ran out of deadline before an answer landed.
    pub rejected_deadline: u64,
    /// Request lines rejected as unparseable JSON.
    pub rejected_malformed: u64,
    /// Connections evicted for stalling mid-request-line.
    pub evicted_slow: u64,
    /// Sweep computations that panicked (caught; the server survived).
    pub panics: u64,
    /// Retried sweeps whose idempotency key was recognized.
    pub idem_hits: u64,
    /// Dispatched cells that failed or were quarantined.
    pub failed_cells: u64,
    /// Network faults injected by the chaos plan (zero when unarmed).
    pub chaos: chaos::ChaosCounts,
    /// Sweep-cache entries persisted to `cache_dir` at drain.
    pub persisted: u64,
    /// True when every in-flight sweep landed and the queue emptied
    /// within the drain budget.
    pub drained_clean: bool,
}

impl ServeSummary {
    /// The shutdown report `scripts/verify.sh` greps ("clean shutdown",
    /// "quarantined cells: N").
    pub fn render(&self) -> String {
        let mut line = format!(
            "repro serve: clean shutdown — {} request(s): {} translate(s), \
             {} sweep(s) ({} cached, {} coalesced), {} quota-rejected, \
             {} busy-rejected, {} shed, {} too-large, {} deadline, \
             {} malformed, {} slow-evicted, {} panic(s), quarantined cells: {}, \
             drain: {}",
            self.requests,
            self.translates,
            self.sweeps,
            self.sweep_cache_hits,
            self.sweep_coalesced,
            self.rejected_quota,
            self.rejected_busy,
            self.rejected_shed,
            self.rejected_too_large,
            self.rejected_deadline,
            self.rejected_malformed,
            self.evicted_slow,
            self.panics,
            self.failed_cells,
            if self.drained_clean { "clean" } else { "timed out" },
        );
        if self.persisted > 0 {
            line.push_str(&format!(", persisted {} cached sweep(s)", self.persisted));
        }
        if self.chaos.total() > 0 {
            line.push_str(&format!(
                ", chaos: {} fault(s) injected ({} torn, {} reset, {} stalled, {} accept)",
                self.chaos.total(),
                self.chaos.torn_frames,
                self.chaos.resets,
                self.chaos.stalls,
                self.chaos.accept_hiccups,
            ));
        }
        line
    }
}

impl ServerHandle {
    /// Initiates shutdown from the owning process, exactly as a
    /// `{"op":"shutdown"}` request would. The escape hatch for the
    /// chaos soak: at extreme fault rates every polite shutdown
    /// attempt can be eaten by the plan itself, and [`wait`] would
    /// otherwise block forever.
    ///
    /// [`wait`]: ServerHandle::wait
    pub fn trigger_shutdown(&self) {
        nudge_shutdown(&self.state);
    }

    /// Blocks until the server shuts down (a client sent
    /// `{"op":"shutdown"}`), then returns the lifetime summary.
    pub fn wait(self) -> ServeSummary {
        let _ = self.accept.join();
        let _ = self.dispatcher.join();
        // Handler threads exit within one read-timeout tick of the
        // shutdown flag; give stragglers a bounded grace period.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.state.active_conns.load(Ordering::SeqCst) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Graceful drain: in-flight sweep leaders keep computing past
        // their clients' deadlines (the bytes land in the cache); give
        // them the drain budget to finish instead of losing the work.
        let drain_deadline =
            Instant::now() + Duration::from_millis(self.state.cfg.drain_ms);
        let mut drained_clean = true;
        while self.state.inflight_sweeps.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= drain_deadline {
                drained_clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // The dispatcher drains its queue before exiting; anything left
        // is a job that slipped in after it looked — a leaked slot.
        if !relock(&self.state.queue).is_empty() {
            drained_clean = false;
        }
        let persisted = persist_results(&self.state);
        let c = &self.state.c;
        ServeSummary {
            requests: c.requests.load(Ordering::Relaxed),
            translates: c.translates.load(Ordering::Relaxed),
            sweeps: c.sweeps.load(Ordering::Relaxed),
            sweep_cache_hits: c.sweep_cache_hits.load(Ordering::Relaxed),
            sweep_coalesced: c.sweep_coalesced.load(Ordering::Relaxed),
            rejected_quota: c.rejected_quota.load(Ordering::Relaxed),
            rejected_busy: c.rejected_busy.load(Ordering::Relaxed),
            rejected_shed: c.rejected_shed.load(Ordering::Relaxed),
            rejected_too_large: c.rejected_too_large.load(Ordering::Relaxed),
            rejected_deadline: c.rejected_deadline.load(Ordering::Relaxed),
            rejected_malformed: c.rejected_malformed.load(Ordering::Relaxed),
            evicted_slow: c.evicted_slow.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            idem_hits: c.idem_hits.load(Ordering::Relaxed),
            failed_cells: c.failed_cells.load(Ordering::Relaxed),
            chaos: self
                .state
                .chaos
                .as_ref()
                .map_or_else(chaos::ChaosCounts::default, |p| relock(p).counts()),
            persisted,
            drained_clean,
        }
    }
}

/// Current sweep-cache schema. v2 appends a `crc` field — a CRC32 over
/// every byte before the `, "crc"` key (the journal-line convention) —
/// so a bit flip anywhere in the entry is caught at load time instead
/// of silently warming the cache with corrupt bytes.
pub(crate) const CACHE_SCHEMA: &str = "colt-serve-cache/v2";

/// Encodes one sweep-cache entry in the v2 on-disk format.
pub(crate) fn encode_cache_entry(key: &str, bytes: &str) -> String {
    let prefix = format!(
        "{{\"schema\": \"{CACHE_SCHEMA}\", \"key\": \"{}\", \"bytes\": \"{}\"",
        crate::artifact::json_escape(key),
        crate::artifact::json_escape(bytes),
    );
    let crc = crate::journal::crc32(prefix.as_bytes());
    format!("{prefix}, \"crc\": \"{crc:08x}\"}}")
}

/// Decodes and integrity-checks one cache entry. `Ok(Some((key,
/// bytes)))` is a loadable v2 entry; `Ok(None)` is a healthy file this
/// build does not load (a legacy `colt-serve-cache/v1` entry or a
/// foreign artifact — skipped, never quarantined); `Err(reason)` is
/// corruption the caller must quarantine. The CRC gate runs before the
/// schema match so a flip anywhere in the prefix — including inside the
/// schema or key strings — is reported as corrupt, not mis-skipped.
pub(crate) fn decode_cache_entry(text: &str) -> Result<Option<(String, String)>, String> {
    crate::artifact::validate_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let doc = json::parse(text).map_err(|e| format!("unparseable: {e}"))?;
    let schema = doc.get("schema").and_then(json::Json::as_str);
    match text.rfind(", \"crc\": \"") {
        Some(at) => {
            let stored = doc
                .get("crc")
                .and_then(json::Json::as_str)
                .ok_or_else(|| "unreadable crc field".to_string())?;
            let actual = crate::journal::crc32(text[..at].as_bytes());
            // Exact string comparison, not a hex parse: `from_str_radix`
            // is case-insensitive, so a single bit flip turning `a` into
            // `A` would otherwise verify successfully.
            let expect = format!("{actual:08x}");
            if stored != expect {
                return Err(format!(
                    "checksum mismatch (stored {stored}, computed {expect})"
                ));
            }
        }
        // A v2 entry always carries the crc key; its absence on a file
        // claiming v2 means the key itself was damaged.
        None if schema == Some(CACHE_SCHEMA) => {
            return Err("v2 entry without crc field".to_string());
        }
        None => return Ok(None),
    }
    match (
        schema,
        doc.get("key").and_then(json::Json::as_str),
        doc.get("bytes").and_then(json::Json::as_str),
    ) {
        (Some(CACHE_SCHEMA), Some(k), Some(b)) => Ok(Some((k.to_string(), b.to_string()))),
        _ => Ok(None),
    }
}

/// Cache dirs that already warned about a persist failure. Matches the
/// snapshot cache's degradation contract: an unwritable dir drops the
/// server to mem-only persistence with exactly one warning per dir.
static CACHE_DIR_WARNED: Mutex<Option<std::collections::BTreeSet<PathBuf>>> = Mutex::new(None);

fn note_cache_dir_failure(dir: &std::path::Path) -> bool {
    let mut warned = CACHE_DIR_WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    warned
        .get_or_insert_with(Default::default)
        .insert(dir.to_path_buf())
}

/// Persists one sweep-cache entry into `dir` (atomic, fsynced,
/// CRC-stamped). Shared with the torture harness, which persists and
/// reloads entries around simulated power cuts.
pub(crate) fn persist_cache_entry(
    dir: &std::path::Path,
    key: &str,
    bytes: &str,
) -> std::io::Result<PathBuf> {
    let body = encode_cache_entry(key, bytes);
    let path = dir.join(format!("sweep-{}.json", fingerprint_of(key)));
    crate::artifact::atomic_write_json(&path, &body)?;
    Ok(path)
}

/// Persists every cached sweep result to `cache_dir` at graceful drain
/// — one fsynced JSON artifact per entry, written atomically via
/// [`crate::artifact::atomic_write_json`]. Returns how many landed. A
/// persist failure (full or unwritable disk) degrades to mem-only with
/// one warning per dir; the remaining entries are skipped since they
/// would fail the same way.
fn persist_results(state: &ServerState) -> u64 {
    let Some(dir) = &state.cfg.cache_dir else { return 0 };
    let results = relock(&state.results);
    let mut persisted = 0;
    for (key, bytes) in results.iter() {
        match persist_cache_entry(dir, key, bytes) {
            Ok(_) => persisted += 1,
            Err(e) => {
                if note_cache_dir_failure(dir) && !state.cfg.quiet {
                    eprintln!(
                        "repro serve: cache dir {} is unwritable ({e}); \
                         continuing mem-only",
                        dir.display()
                    );
                }
                break;
            }
        }
    }
    persisted
}

/// Reads every `sweep-*.json` entry under `dir` exactly once (through
/// the active [`crate::vfs`] seam, so injected read faults land here),
/// quarantining anything corrupt. Returns the decoded entries plus the
/// quarantine count. Shared with the torture harness.
pub(crate) fn load_cache_entries(
    dir: &std::path::Path,
    quiet: bool,
) -> (Vec<(String, String)>, u64) {
    let Ok(dirents) = std::fs::read_dir(dir) else { return (Vec::new(), 0) };
    let mut paths: Vec<PathBuf> = dirents
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("sweep-") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let fs = crate::vfs::active();
    let mut entries = Vec::new();
    let mut quarantined = 0;
    for path in paths {
        // One read per file: reading again for a corruption check would
        // draw the fault plan twice and desynchronize the schedule.
        let text = match crate::vfs::acct("serve-cache", fs.read(&path)) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            // A read fault is a cold cache miss, not corruption.
            Err(_) => continue,
        };
        match decode_cache_entry(&text) {
            Ok(Some(entry)) => entries.push(entry),
            Ok(None) => {}
            Err(why) => {
                crate::io_faults::confirm_flip(&path);
                quarantined += 1;
                let dest = crate::artifact::quarantine_path(&path);
                match crate::vfs::acct("serve-cache", fs.rename(&path, &dest)) {
                    Ok(()) if !quiet => eprintln!(
                        "repro serve: quarantined corrupt cache artifact {} -> {} ({why})",
                        path.display(),
                        dest.display()
                    ),
                    Err(e) if !quiet => eprintln!(
                        "repro serve: corrupt cache artifact {} ({why}); \
                         quarantine failed: {e}",
                        path.display()
                    ),
                    _ => {}
                }
            }
        }
    }
    (entries, quarantined)
}

/// Reloads sweep results persisted by an earlier drain, quarantining
/// (and reporting) any artifact that no longer parses or fails its
/// checksum. Returns `(loaded, quarantined)`.
fn load_persisted_results(
    dir: &std::path::Path,
    results: &Mutex<LruMap<Arc<String>>>,
    quiet: bool,
) -> (u64, u64) {
    let (entries, quarantined) = load_cache_entries(dir, quiet);
    let loaded = entries.len() as u64;
    for (key, bytes) in entries {
        relock(results).insert(key, Arc::new(bytes));
    }
    (loaded, quarantined)
}

/// Binds, spawns the accept and dispatcher threads, and returns. The
/// caller drives [`ServerHandle::wait`] for the summary.
///
/// # Errors
/// Propagates bind/port-file I/O errors; nothing is left running then.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let cfg = cfg.normalized();
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let port = listener.local_addr()?.port();
    if let Some(path) = &cfg.port_file {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, format!("{port}\n"))?;
    }
    let shards = (0..cfg.shards)
        .map(|_| Mutex::new(LruMap::bounded(cfg.shard_cap)))
        .collect();
    let results = Mutex::new(LruMap::bounded(cfg.result_cache_cap));
    if let Some(dir) = &cfg.cache_dir {
        // Startup hygiene, mirroring `repro`'s results/ sweep: report
        // quarantines left by earlier runs and clear tmp litter from
        // writes that lost power mid-rename.
        let leftover = crate::artifact::find_quarantined(dir);
        if !cfg.quiet && !leftover.is_empty() {
            eprintln!(
                "repro serve: {} quarantined artifact(s) under {} (first: {})",
                leftover.len(),
                dir.display(),
                leftover[0].display()
            );
        }
        let swept = crate::artifact::sweep_tmp_litter(dir);
        if !cfg.quiet && !swept.is_empty() {
            eprintln!(
                "repro serve: removed {} leaked tmp file(s) from {}",
                swept.len(),
                dir.display()
            );
        }
        let (loaded, quarantined) = load_persisted_results(dir, &results, cfg.quiet);
        if !cfg.quiet && (loaded > 0 || quarantined > 0) {
            println!(
                "repro serve: warmed {loaded} cached sweep(s) from {} \
                 ({quarantined} quarantined)",
                dir.display()
            );
        }
    }
    let state = Arc::new(ServerState {
        results,
        shards,
        inflight: Mutex::new(HashMap::new()),
        sweep_gate: Mutex::new(()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        active_conns: AtomicU64::new(0),
        inflight_sweeps: AtomicU64::new(0),
        idem: Mutex::new(LruMap::bounded(1024)),
        chaos: cfg.chaos.map(|c| Mutex::new(chaos::ChaosPlan::new(c))),
        c: Counters::default(),
        port,
        cfg,
    });

    let dispatcher = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&state))?
    };
    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &state))?
    };
    Ok(ServerHandle { port, state, accept, dispatcher })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            // The self-connect nudge (or a late client) after shutdown.
            return;
        }
        // Chaos: a listen-queue hiccup — accept, then drop on the floor.
        // The client sees an instant close and must retry.
        if let Some(plan) = &state.chaos {
            if relock(plan).accept_hiccup() {
                drop(stream);
                continue;
            }
        }
        if state.active_conns.load(Ordering::SeqCst) >= state.cfg.max_conns as u64 {
            state.c.add(&state.c.rejected_conns, 1);
            let mut s = stream;
            let _ = s.write_all(
                b"{\"ok\": false, \"error\": \"too many connections\", \"rejected\": \"busy\"}\n",
            );
            continue;
        }
        state.active_conns.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(state);
        let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
            handle_connection(stream, &state);
            state.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Wakes everything blocked on I/O or condvars so shutdown converges.
fn nudge_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue_cv.notify_all();
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(("127.0.0.1", state.port));
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// What one request-line read produced.
enum ReadLine {
    /// A complete (bounded) line.
    Line(String),
    /// The line exceeded `max_line_bytes`; it was drained to its
    /// newline and discarded. The connection stays usable.
    TooLarge,
    /// The client stalled mid-line past `slow_client_ms`; evict it.
    Evicted,
    /// EOF, a hard error, or server shutdown.
    Closed,
}

/// Reads one `\n`-terminated line, tolerating read timeouts (used to
/// poll the shutdown flag). `read_until` keeps partial bytes in `buf`
/// across timeouts, so slow writers are reassembled, not dropped —
/// but a line is only reassembled up to `max_line_bytes` (past it the
/// rest is drained and the line rejected, never buffered), and a
/// client that stalls mid-line past `slow_client_ms` is evicted. An
/// idle connection *between* requests is never evicted: the timer only
/// runs while a partial line is outstanding.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    state: &ServerState,
) -> ReadLine {
    let mut discarding = false;
    let mut partial_since: Option<Instant> = None;
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return ReadLine::Closed;
        }
        if let Some(t0) = partial_since {
            if t0.elapsed() >= Duration::from_millis(state.cfg.slow_client_ms) {
                buf.clear();
                return ReadLine::Evicted;
            }
        }
        match reader.read_until(b'\n', buf) {
            Ok(0) => {
                // EOF; any partial bytes are the (unterminated) last line.
                if discarding || buf.is_empty() {
                    buf.clear();
                    return ReadLine::Closed;
                }
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                return ReadLine::Line(line);
            }
            Ok(_) => {
                let complete = buf.last() == Some(&b'\n');
                if discarding {
                    buf.clear();
                    if complete {
                        return ReadLine::TooLarge;
                    }
                    continue;
                }
                if complete {
                    if buf.len() > state.cfg.max_line_bytes {
                        buf.clear();
                        return ReadLine::TooLarge;
                    }
                    let line = String::from_utf8_lossy(buf).trim_end().to_string();
                    buf.clear();
                    return ReadLine::Line(line);
                }
                // Delimiter not reached. Cap what a slow writer may
                // make the server buffer; past the cap, drain-and-drop.
                if buf.len() > state.cfg.max_line_bytes {
                    buf.clear();
                    discarding = true;
                }
                if partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // A timeout with bytes already buffered (or a drain in
                // progress) is a mid-line stall — start the eviction
                // clock. `read_until` reports partial progress as this
                // error, not `Ok`, so this is where stalls surface.
                if (discarding || !buf.is_empty()) && partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
                continue;
            }
            Err(_) => return ReadLine::Closed,
        }
    }
}

fn err_line(msg: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", crate::artifact::json_escape(msg))
}

fn reject_line(kind: &str, msg: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"{}\", \"rejected\": \"{kind}\"}}",
        crate::artifact::json_escape(msg)
    )
}

/// Writes one response line, routing it through the chaos plan when
/// one is armed. Returns `false` when the connection is unusable
/// afterwards — including when chaos just made it so (a torn frame or
/// reset closes the socket; the *server* stays healthy and the client
/// is expected to retry).
fn send_line(state: &ServerState, writer: &mut TcpStream, line: &str) -> bool {
    let fault = match &state.chaos {
        Some(plan) => relock(plan).response_fault(),
        None => chaos::ResponseFault::Deliver,
    };
    match fault {
        chaos::ResponseFault::Deliver => {}
        chaos::ResponseFault::TornFrame => {
            let bytes = line.as_bytes();
            let cut = state
                .chaos
                .as_ref()
                .map_or(1, |plan| relock(plan).tear_at(bytes.len()));
            let _ = writer.write_all(&bytes[..cut.min(bytes.len())]);
            let _ = writer.shutdown(std::net::Shutdown::Both);
            return false;
        }
        chaos::ResponseFault::Reset => {
            let _ = writer.shutdown(std::net::Shutdown::Both);
            return false;
        }
        chaos::ResponseFault::Stall(pause) => std::thread::sleep(pause),
    }
    writeln!(writer, "{line}").is_ok()
}

/// The per-request deadline: the request's `"deadline_ms"` clamped to
/// the server-wide ceiling (absent means the ceiling itself).
fn request_deadline(state: &ServerState, request: &json::Json) -> (Instant, u64) {
    let ms = request
        .get("deadline_ms")
        .and_then(json::Json::as_u64)
        .unwrap_or(state.cfg.deadline_ms)
        .clamp(1, state.cfg.deadline_ms);
    (Instant::now() + Duration::from_millis(ms), ms)
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream
        .set_write_timeout(Some(Duration::from_millis(state.cfg.slow_client_ms)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut served: u64 = 0;
    loop {
        let line = match read_line(&mut reader, &mut buf, state) {
            ReadLine::Line(l) => l,
            ReadLine::TooLarge => {
                state.c.add(&state.c.rejected_too_large, 1);
                let reject = reject_line(
                    "too_large",
                    &format!(
                        "request line exceeds {} bytes",
                        state.cfg.max_line_bytes
                    ),
                );
                if !send_line(state, &mut writer, &reject) {
                    return;
                }
                continue;
            }
            ReadLine::Evicted => {
                state.c.add(&state.c.evicted_slow, 1);
                let _ = send_line(
                    state,
                    &mut writer,
                    &err_line(&format!(
                        "evicted: request line stalled past {}ms",
                        state.cfg.slow_client_ms
                    )),
                );
                let _ = writer.shutdown(std::net::Shutdown::Both);
                return;
            }
            ReadLine::Closed => return,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        state.c.add(&state.c.requests, 1);
        let request = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                state.c.add(&state.c.bad_requests, 1);
                state.c.add(&state.c.rejected_malformed, 1);
                let reject = reject_line("malformed", &format!("bad request JSON: {e}"));
                if !send_line(state, &mut writer, &reject) {
                    return;
                }
                continue;
            }
        };
        let op = request.get("op").and_then(json::Json::as_str).unwrap_or("");
        served += 1;
        // Quota: past the per-connection budget, everything except
        // shutdown is politely rejected (the connection stays usable
        // for the operator's shutdown).
        if served > state.cfg.quota && op != "shutdown" {
            state.c.add(&state.c.rejected_quota, 1);
            let reject = reject_line(
                "quota",
                &format!("request quota of {} exhausted", state.cfg.quota),
            );
            if !send_line(state, &mut writer, &reject) {
                return;
            }
            continue;
        }
        let (deadline, deadline_ms) = request_deadline(state, &request);
        let response = match op {
            "ping" => "{\"ok\": true, \"op\": \"ping\"}".to_string(),
            "stats" => stats_line(state),
            "translate" => handle_translate(state, &request, deadline, deadline_ms),
            "sweep" => handle_sweep(state, &request, deadline, deadline_ms),
            "shutdown" => {
                // The shutdown ack is exempt from chaos: the harness
                // must always be able to stop the server it started.
                let _ = writeln!(writer, "{{\"ok\": true, \"op\": \"shutdown\"}}");
                let _ = writer.flush();
                nudge_shutdown(state);
                return;
            }
            other => {
                state.c.add(&state.c.bad_requests, 1);
                err_line(&format!(
                    "unknown op '{other}' (valid: ping stats translate sweep shutdown)"
                ))
            }
        };
        if !send_line(state, &mut writer, &response) {
            return;
        }
    }
}

fn stats_line(state: &ServerState) -> String {
    let c = &state.c;
    let load = |f: &AtomicU64| f.load(Ordering::Relaxed);
    let chaos = state
        .chaos
        .as_ref()
        .map_or_else(chaos::ChaosCounts::default, |p| relock(p).counts());
    format!(
        "{{\"ok\": true, \"op\": \"stats\", \"requests\": {}, \"translates\": {}, \
         \"sweeps\": {}, \"sweep_cache_hits\": {}, \"sweep_coalesced\": {}, \
         \"sweep_cache_evictions\": {}, \"rejected_quota\": {}, \"rejected_busy\": {}, \
         \"rejected_conns\": {}, \"rejected_shed\": {}, \"rejected_too_large\": {}, \
         \"rejected_deadline\": {}, \"rejected_malformed\": {}, \"evicted_slow\": {}, \
         \"panics\": {}, \"idem_hits\": {}, \"failed_cells\": {}, \"batches\": {}, \
         \"batched_requests\": {}, \"prep_mem_hits\": {}, \"prep_disk_hits\": {}, \
         \"prep_misses\": {}, \"prep_evictions\": {}, \"shard_hits\": {}, \
         \"shard_evictions\": {}, \"bad_requests\": {}, \"active_conns\": {}, \
         \"queue_len\": {}, \"inflight_sweeps\": {}, \
         \"result_cache_len\": {}, \"snapshot_mem_len\": {}, \"shards\": {}, \
         \"jobs\": {}, \"chaos_injected\": {}, \"chaos_torn_frames\": {}, \
         \"chaos_resets\": {}, \"chaos_stalls\": {}, \"chaos_accept_hiccups\": {}}}",
        load(&c.requests),
        load(&c.translates),
        load(&c.sweeps),
        load(&c.sweep_cache_hits),
        load(&c.sweep_coalesced),
        load(&c.sweep_cache_evictions),
        load(&c.rejected_quota),
        load(&c.rejected_busy),
        load(&c.rejected_conns),
        load(&c.rejected_shed),
        load(&c.rejected_too_large),
        load(&c.rejected_deadline),
        load(&c.rejected_malformed),
        load(&c.evicted_slow),
        load(&c.panics),
        load(&c.idem_hits),
        load(&c.failed_cells),
        load(&c.batches),
        load(&c.batched_requests),
        load(&c.prep_mem_hits),
        load(&c.prep_disk_hits),
        load(&c.prep_misses),
        load(&c.prep_evictions),
        load(&c.shard_hits),
        load(&c.shard_evictions),
        load(&c.bad_requests),
        state.active_conns.load(Ordering::SeqCst),
        relock(&state.queue).len(),
        state.inflight_sweeps.load(Ordering::SeqCst),
        relock(&state.results).len(),
        snapshot_cache::mem_len(),
        state.cfg.shards,
        state.cfg.jobs,
        chaos.total(),
        chaos.torn_frames,
        chaos.resets,
        chaos.stalls,
        chaos.accept_hiccups,
    )
}

// ---------------------------------------------------------------------
// translate: bounded queue -> batched dispatch onto the runner
// ---------------------------------------------------------------------

fn parse_scenario(name: &str) -> Result<Scenario, String> {
    match name {
        "" | "default" => Ok(Scenario::default_linux()),
        "no_ths" => Ok(Scenario::no_ths()),
        "no_ths_low_compaction" => Ok(Scenario::no_ths_low_compaction()),
        other => Err(format!(
            "unknown scenario '{other}' (valid: default no_ths no_ths_low_compaction)"
        )),
    }
}

/// The optional `"policy"` field of a translate/sweep request. Absent
/// or empty means [`PolicyKind::Default`] — the historical behavior —
/// so old clients keep their exact cache keys; an unknown name is
/// rejected before anything runs or any pool is touched.
fn parse_policy(request: &json::Json) -> Result<PolicyKind, String> {
    match request.get("policy").and_then(json::Json::as_str) {
        None | Some("") => Ok(PolicyKind::Default),
        Some(name) => name.parse::<PolicyKind>(),
    }
}

fn parse_tlb(name: &str) -> Result<TlbConfig, String> {
    match name {
        "baseline" => Ok(TlbConfig::baseline()),
        "colt_sa" => Ok(TlbConfig::colt_sa()),
        "colt_fa" => Ok(TlbConfig::colt_fa()),
        "" | "colt_all" => Ok(TlbConfig::colt_all()),
        other => Err(format!(
            "unknown config '{other}' (valid: baseline colt_sa colt_fa colt_all)"
        )),
    }
}

fn handle_translate(
    state: &Arc<ServerState>,
    request: &json::Json,
    deadline: Instant,
    deadline_ms: u64,
) -> String {
    let bench_name = match request.get("benchmark").and_then(json::Json::as_str) {
        Some(b) => b,
        None => return err_line("translate needs a \"benchmark\""),
    };
    let spec = match benchmark(bench_name) {
        Some(s) => s,
        None => return err_line(&format!("unknown benchmark '{bench_name}'")),
    };
    let tlb = match parse_tlb(request.get("config").and_then(json::Json::as_str).unwrap_or(""))
    {
        Ok(t) => t,
        Err(e) => return err_line(&e),
    };
    let scenario = match parse_scenario(
        request.get("scenario").and_then(json::Json::as_str).unwrap_or(""),
    ) {
        Ok(s) => s,
        Err(e) => return err_line(&e),
    };
    // The policy lands in the scenario (name included), so prepared-
    // instance pools — keyed by `snapshot_cache::prep_key` — never mix
    // instances booted under different policies.
    let scenario = match parse_policy(request) {
        Ok(kind) => scenario.with_policy(kind),
        Err(e) => return err_line(&e),
    };
    let accesses = request
        .get("accesses")
        .and_then(json::Json::as_u64)
        .unwrap_or(20_000)
        .clamp(1, state.cfg.max_accesses);
    let mut sim_cfg = SimConfig::new(tlb).with_accesses(accesses);
    if let Some(seed) = request.get("seed").and_then(json::Json::as_u64) {
        sim_cfg.pattern_seed = seed;
    }

    let (reply, result_rx) = mpsc::channel();
    {
        let mut q = relock(&state.queue);
        if q.len() >= state.cfg.queue_cap {
            state.c.add(&state.c.rejected_busy, 1);
            return reject_line(
                "busy",
                &format!("dispatch queue full ({} queued)", state.cfg.queue_cap),
            );
        }
        q.push_back(TranslateJob { scenario, spec, sim_cfg, deadline, reply });
    }
    state.queue_cv.notify_one();

    let wait = deadline.saturating_duration_since(Instant::now());
    match result_rx.recv_timeout(wait) {
        Ok(Ok(r)) => {
            state.c.add(&state.c.translates, 1);
            format!(
                "{{\"ok\": true, \"op\": \"translate\", \"benchmark\": \"{}\", \
                 \"accesses\": {}, \"l1_misses\": {}, \"l2_misses\": {}, \
                 \"walks\": {}, \"walk_cycles\": {}, \"superpage_fills\": {}}}",
                crate::artifact::json_escape(bench_name),
                r.tlb.accesses,
                r.tlb.l1_misses,
                r.tlb.l2_misses,
                r.walker.walks,
                r.walk_cycles,
                r.tlb.superpage_fills,
            )
        }
        // The runner dropped the cell unrun at dispatch because its
        // deadline had already passed — a deadline rejection, not a
        // failed cell (no compute was lost and no slot leaked).
        Ok(Err(e)) if e.contains(runner::EXPIRED_IN_QUEUE) => {
            state.c.add(&state.c.rejected_deadline, 1);
            reject_line(
                "deadline",
                &format!("deadline of {deadline_ms}ms exceeded before dispatch"),
            )
        }
        Ok(Err(e)) => {
            state.c.add(&state.c.failed_cells, 1);
            err_line(&e)
        }
        Err(_) => {
            state.c.add(&state.c.rejected_deadline, 1);
            reject_line(
                "deadline",
                &format!("deadline of {deadline_ms}ms exceeded awaiting the result"),
            )
        }
    }
}

fn dispatch_loop(state: &Arc<ServerState>) {
    loop {
        let batch: Vec<TranslateJob> = {
            let mut q = relock(&state.queue);
            while q.is_empty() {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = state
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
            let n = q.len().min(state.cfg.batch_max);
            q.drain(..n).collect()
        };
        run_batch(state, batch);
        state.absorb_cache_stats();
    }
}

/// Fetches (or prepares) the workload for one (scenario, spec) pair via
/// the fingerprint-sharded pools, falling back to the snapshot cache's
/// memory/disk/build path on a shard miss.
fn shard_get_or_prepare(
    state: &ServerState,
    scenario: &Scenario,
    spec: &BenchmarkSpec,
) -> Result<Arc<PreparedWorkload>, String> {
    let key = snapshot_cache::prep_key(scenario, spec);
    let shard = fingerprint_bucket(&fingerprint_of(&key), state.cfg.shards);
    if let Some(w) = relock(&state.shards[shard]).get(&key).map(Arc::clone) {
        state.c.add(&state.c.shard_hits, 1);
        return Ok(w);
    }
    let prepared = snapshot_cache::get_or_prepare(scenario, spec)?;
    let evicted =
        relock(&state.shards[shard]).insert(key, Arc::clone(&prepared.workload));
    state.c.add(&state.c.shard_evictions, evicted);
    Ok(prepared.workload)
}

/// Resolves each *unique* preparation once, then fans the whole batch
/// out onto the work-stealing runner. This is the request-coalescing
/// payoff: sixty queued translates against four configurations cost
/// four preparations, not sixty.
fn run_batch(state: &Arc<ServerState>, batch: Vec<TranslateJob>) {
    state.c.add(&state.c.batches, 1);
    state.c.add(&state.c.batched_requests, batch.len() as u64);

    let mut prepared: BTreeMap<String, Result<Arc<PreparedWorkload>, String>> =
        BTreeMap::new();
    for job in &batch {
        let key = snapshot_cache::prep_key(&job.scenario, &job.spec);
        prepared.entry(key).or_insert_with(|| {
            shard_get_or_prepare(state, &job.scenario, &job.spec)
        });
    }

    let mut tasks: Vec<SweepTask<SimResult>> = Vec::new();
    let mut replies: Vec<mpsc::Sender<Result<SimResult, String>>> = Vec::new();
    for (i, job) in batch.into_iter().enumerate() {
        let key = snapshot_cache::prep_key(&job.scenario, &job.spec);
        match &prepared[&key] {
            Ok(workload) => {
                let workload = Arc::clone(workload);
                let sim_cfg = job.sim_cfg;
                tasks.push(
                    SweepTask::new(
                        format!("serve/{}/{i}", job.spec.name),
                        sim_cfg.accesses,
                        move || sim::run(&workload, &sim_cfg),
                    )
                    .with_expiry(job.deadline),
                );
                replies.push(job.reply);
            }
            Err(e) => {
                let _ = job.reply.send(Err(e.clone()));
            }
        }
    }
    if tasks.is_empty() {
        return;
    }
    let outcomes = runner::run_tasks_service(tasks, state.cfg.jobs);
    for (outcome, reply) in outcomes.into_iter().zip(replies) {
        let msg = match outcome {
            CellOutcome::Ok(r) => Ok(r),
            CellOutcome::Failed { label, payload } => {
                Err(format!("cell {label} failed: {payload}"))
            }
            CellOutcome::Quarantined { label, attempts, reason } => {
                Err(format!("cell {label} quarantined after {attempts} attempt(s): {reason}"))
            }
        };
        let _ = reply.send(msg);
    }
}

// ---------------------------------------------------------------------
// sweep: LRU result cache + single-flight + serialized compute
// ---------------------------------------------------------------------

fn sweep_response(
    experiment: &str,
    fingerprint: &str,
    cached: bool,
    coalesced: bool,
    idem_replayed: Option<bool>,
    bytes: &str,
) -> String {
    // The idem field only appears when the request carried an "idem"
    // key, so responses to idem-less clients are byte-stable across
    // versions.
    let idem = idem_replayed
        .map(|replayed| format!("\"idem_replayed\": {replayed}, "))
        .unwrap_or_default();
    format!(
        "{{\"ok\": true, \"op\": \"sweep\", \"experiment\": \"{}\", \
         \"fingerprint\": \"{fingerprint}\", \"cached\": {cached}, \
         \"coalesced\": {coalesced}, {idem}\"bytes\": \"{}\"}}",
        crate::artifact::json_escape(experiment),
        crate::artifact::json_escape(bytes)
    )
}

/// The sweep compute path, run on a dedicated leader thread so the
/// requesting handler can deadline-out while the work (and its cache
/// fill) continues. Serialized by the sweep gate.
fn compute_sweep(
    state: &Arc<ServerState>,
    experiment: &str,
    opts: &ExperimentOptions,
    key: &str,
) -> Result<Arc<String>, String> {
    let _gate = relock(&state.sweep_gate);
    // A just-finished leader for the same key may have filled the
    // cache while this one waited on the gate. The lookup is bound
    // *before* the branch: an `if let` on the locked map would keep
    // the results guard alive through the else arm (scrutinee
    // temporaries live for the whole expression), and the insert
    // below would then self-deadlock.
    let already = relock(&state.results).get(key).map(Arc::clone);
    if let Some(bytes) = already {
        state.c.add(&state.c.sweep_cache_hits, 1);
        return Ok(bytes);
    }
    let computed = catch_unwind(AssertUnwindSafe(|| sweep_csv(experiment, opts)));
    // Sweeps run with metrics collection on (the drivers use the
    // sweep entry points); drain the registry so a resident
    // server stays memory-flat.
    let _ = runner::take_metrics();
    state.absorb_cache_stats();
    match computed {
        Ok(Ok(bytes)) => {
            let bytes = Arc::new(bytes);
            let evicted =
                relock(&state.results).insert(key.to_string(), Arc::clone(&bytes));
            state.c.add(&state.c.sweep_cache_evictions, evicted);
            Ok(bytes)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => {
            state.c.add(&state.c.failed_cells, 1);
            state.c.add(&state.c.panics, 1);
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("sweep '{experiment}' panicked: {msg}"))
        }
    }
}

fn handle_sweep(
    state: &Arc<ServerState>,
    request: &json::Json,
    deadline: Instant,
    deadline_ms: u64,
) -> String {
    let experiment = match request.get("experiment").and_then(json::Json::as_str) {
        Some(e) => e.to_string(),
        None => return err_line("sweep needs an \"experiment\""),
    };
    let policy = match parse_policy(request) {
        Ok(kind) => kind,
        Err(e) => return err_line(&e),
    };
    let opts = sweep_options(
        request.get("accesses").and_then(json::Json::as_u64),
        request.get("bench").and_then(json::Json::as_str),
        request.get("cores").and_then(json::Json::as_u64),
        policy,
        state.cfg.jobs,
        state.cfg.max_accesses,
    );
    let fingerprint = opts.fingerprint(&experiment);
    let key = sweep_key(&experiment, &opts);

    // Admission control, by op priority: past the dispatch queue's
    // high-water mark the heavyweight op (sweep) is shed first, while
    // translates keep queueing until the hard cap and ping/stats are
    // always served.
    if relock(&state.queue).len() >= state.cfg.high_water() {
        state.c.add(&state.c.rejected_shed, 1);
        return reject_line(
            "shed",
            &format!(
                "overloaded: dispatch queue past its high-water mark of {}",
                state.cfg.high_water()
            ),
        );
    }
    state.c.add(&state.c.sweeps, 1);

    // Idempotency: a retried request carrying the same "idem" key for
    // the same sweep is recognized and flagged, proving to the client
    // that its retry coalesced (via cache or single-flight) instead of
    // recomputing.
    let idem_replayed = request.get("idem").and_then(json::Json::as_str).map(|idem| {
        let mut seen = relock(&state.idem);
        let replayed = seen.get(idem) == Some(&key);
        seen.insert(idem.to_string(), key.clone());
        if replayed {
            state.c.add(&state.c.idem_hits, 1);
        }
        replayed
    });

    // Bind the lookup so the results guard drops before the (possibly
    // large) response is escaped and formatted.
    let cached = relock(&state.results).get(&key).map(Arc::clone);
    if let Some(bytes) = cached {
        state.c.add(&state.c.sweep_cache_hits, 1);
        return sweep_response(&experiment, &fingerprint, true, false, idem_replayed, &bytes);
    }

    // Single-flight: one leader computes, identical concurrent requests
    // wait for its bytes instead of burning a second run.
    let (flight, leader) = {
        let mut inflight = relock(&state.inflight);
        match inflight.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(Flight::new());
                inflight.insert(key.clone(), Arc::clone(&f));
                (f, true)
            }
        }
    };

    if leader {
        // Compute on a dedicated thread: the handler below can then
        // deadline-out politely while the work finishes and lands in
        // the cache — nothing in flight is ever lost to a slow or
        // disconnected client. The thread owns the flight cleanup.
        state.inflight_sweeps.fetch_add(1, Ordering::SeqCst);
        let thread_state = Arc::clone(state);
        let thread_flight = Arc::clone(&flight);
        let thread_exp = experiment.clone();
        let thread_opts = opts.clone();
        let thread_key = key.clone();
        let spawned = std::thread::Builder::new()
            .name("sweep-leader".into())
            .spawn(move || {
                let outcome =
                    compute_sweep(&thread_state, &thread_exp, &thread_opts, &thread_key);
                {
                    let mut done = relock(&thread_flight.done);
                    *done = Some(outcome);
                    thread_flight.cv.notify_all();
                }
                relock(&thread_state.inflight).remove(&thread_key);
                thread_state.inflight_sweeps.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            {
                let mut done = relock(&flight.done);
                *done = Some(Err("could not spawn the sweep leader thread".into()));
                flight.cv.notify_all();
            }
            relock(&state.inflight).remove(&key);
            state.inflight_sweeps.fetch_sub(1, Ordering::SeqCst);
        }
    } else {
        state.c.add(&state.c.sweep_coalesced, 1);
    }

    // Leader and followers alike wait for the flight's bytes, bounded
    // by the request deadline.
    let mut done = relock(&flight.done);
    loop {
        if let Some(outcome) = done.clone() {
            return match outcome {
                Ok(bytes) if leader => {
                    sweep_response(&experiment, &fingerprint, false, false, idem_replayed, &bytes)
                }
                Ok(bytes) => {
                    sweep_response(&experiment, &fingerprint, true, true, idem_replayed, &bytes)
                }
                Err(e) => err_line(&e),
            };
        }
        if Instant::now() >= deadline {
            state.c.add(&state.c.rejected_deadline, 1);
            return reject_line(
                "deadline",
                &format!(
                    "sweep deadline of {deadline_ms}ms exceeded; the work \
                     continues and its result will be cached"
                ),
            );
        }
        let (guard, _) = flight
            .cv
            .wait_timeout(done, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        done = guard;
    }
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

fn serve_usage() -> String {
    "usage: repro serve [--port N] [--port-file PATH] [--jobs N] [--quota N]\n\
     \u{20}                  [--queue-cap N] [--max-conns N] [--shards N]\n\
     \u{20}                  [--shard-cap N] [--result-cache N] [--batch-max N]\n\
     \u{20}                  [--max-accesses N] [--mem-cap N] [--max-line N]\n\
     \u{20}                  [--deadline-ms N] [--high-water N] [--slow-client-ms N]\n\
     \u{20}                  [--drain-ms N] [--cache-dir PATH] [--chaos SPEC] [--quiet]\n\
     --port N         TCP port (default 0 = ephemeral; bound port is printed\n\
     \u{20}                and written to --port-file)\n\
     --quota N        requests per connection before polite rejection\n\
     --queue-cap N    translate dispatch queue bound (backpressure)\n\
     --shards N       prepared-pool lock shards, --shard-cap entries each\n\
     --result-cache N LRU-cached sweep results\n\
     --batch-max N    translate requests dispatched per batch\n\
     --mem-cap N      snapshot-cache memory entries (COLT_SNAPSHOT_MEM_CAP)\n\
     --max-line N     request-line byte bound (past it: rejected \"too_large\")\n\
     --deadline-ms N  ceiling on per-request deadlines (\"deadline_ms\" field)\n\
     --high-water N   queue depth past which sweeps are shed (\"shed\")\n\
     --slow-client-ms N  mid-line stall budget before eviction\n\
     --drain-ms N     graceful-drain budget for in-flight sweeps at shutdown\n\
     --cache-dir PATH persist/reload the sweep result cache across restarts\n\
     --chaos SPEC     deterministic fault injection: rate=R,window=W,seed=S\n\
     protocol: one JSON object per line; ops: ping stats translate sweep shutdown"
        .to_string()
}

fn parse_num(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<u64>().map_err(|_| format!("{flag} {raw}: not a number"))
}

/// `repro serve` entry point.
pub fn cli(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let mut took_value = true;
        let numeric = |flag: &str| parse_num(flag, value);
        match arg {
            "--port" => match numeric("--port") {
                Ok(n) if n <= u64::from(u16::MAX) => cfg.port = n as u16,
                _ => {
                    eprintln!("--port must be 0..=65535");
                    return ExitCode::from(2);
                }
            },
            "--port-file" => match value {
                Some(p) => cfg.port_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--port-file needs a path");
                    return ExitCode::from(2);
                }
            },
            "--cache-dir" => match value {
                Some(p) => cfg.cache_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--chaos" => match value {
                Some(spec) => match chaos::ChaosConfig::parse(spec) {
                    Ok(c) => cfg.chaos = Some(c),
                    Err(e) => {
                        eprintln!("--chaos {spec}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--chaos needs a spec (rate=R,window=W,seed=S)");
                    return ExitCode::from(2);
                }
            },
            "--jobs" | "--quota" | "--queue-cap" | "--max-conns" | "--shards"
            | "--shard-cap" | "--result-cache" | "--batch-max" | "--max-accesses"
            | "--mem-cap" | "--max-line" | "--deadline-ms" | "--high-water"
            | "--slow-client-ms" | "--drain-ms" => match numeric(arg) {
                Ok(n) => match arg {
                    "--jobs" => cfg.jobs = n.max(1) as usize,
                    "--quota" => cfg.quota = n.max(1),
                    "--queue-cap" => cfg.queue_cap = n as usize,
                    "--max-conns" => cfg.max_conns = n.max(1) as usize,
                    "--shards" => cfg.shards = n.max(1) as usize,
                    "--shard-cap" => cfg.shard_cap = n.max(1) as usize,
                    "--result-cache" => cfg.result_cache_cap = n.max(1) as usize,
                    "--batch-max" => cfg.batch_max = n.max(1) as usize,
                    "--max-accesses" => cfg.max_accesses = n.max(1),
                    "--mem-cap" => snapshot_cache::set_mem_capacity(n as usize),
                    "--max-line" => cfg.max_line_bytes = n as usize,
                    "--deadline-ms" => cfg.deadline_ms = n.max(1),
                    "--high-water" => cfg.queue_high_water = Some(n as usize),
                    "--slow-client-ms" => cfg.slow_client_ms = n.max(1),
                    "--drain-ms" => cfg.drain_ms = n,
                    _ => unreachable!(),
                },
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => {
                cfg.quiet = true;
                took_value = false;
            }
            "--help" | "-h" => {
                println!("{}", serve_usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown serve flag '{other}'\n{}", serve_usage());
                return ExitCode::from(2);
            }
        }
        i += if took_value { 2 } else { 1 };
    }

    let quiet = cfg.quiet;
    let handle = match start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("repro serve: could not start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        println!("repro serve: listening on 127.0.0.1:{}", handle.port);
    }
    let summary = handle.wait();
    if !quiet {
        println!("{}", summary.render());
    }
    if summary.failed_cells > 0 || !summary.drained_clean {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_options_build_deterministic_fingerprints() {
        let d = PolicyKind::Default;
        let a = sweep_options(Some(30_000), Some("Gobmk,Bzip2"), Some(1), d, 4, 10_000_000);
        let b = sweep_options(Some(30_000), Some("Gobmk,Bzip2"), Some(1), d, 8, 10_000_000);
        // Jobs never enter the fingerprint: results are identical at
        // any width, so a 4-job server and an 8-job direct run must
        // share a cache key.
        assert_eq!(a.fingerprint("fig18"), b.fingerprint("fig18"));
        assert_ne!(
            a.fingerprint("fig18"),
            sweep_options(Some(40_000), Some("Gobmk,Bzip2"), Some(1), d, 4, 10_000_000)
                .fingerprint("fig18"),
            "the access budget changes results, so it changes the key"
        );
        assert_ne!(a.fingerprint("fig18"), a.fingerprint("fig19"));
    }

    #[test]
    fn sweep_options_separate_policies_in_the_result_cache() {
        let mk = |policy| sweep_options(Some(30_000), Some("Gobmk"), None, policy, 4, 10_000_000);
        let default = mk(PolicyKind::Default);
        // Every policy gets its own sweep fingerprint — the result
        // cache and single-flight table key on it, so a GreedyContig
        // sweep can never be answered with Default bytes.
        let mut keys: Vec<String> =
            PolicyKind::all().iter().map(|&p| sweep_key("fig18", &mk(p))).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), PolicyKind::all().len(), "one cache key per policy");
        assert_eq!(
            default.fingerprint("fig18"),
            mk(PolicyKind::Default).fingerprint("fig18"),
            "the default policy keeps a stable key for old clients"
        );
    }

    #[test]
    fn requests_parse_the_policy_field_and_reject_unknown_names() {
        let parse = |line: &str| parse_policy(&json::parse(line).expect("json"));
        assert_eq!(parse("{\"op\": \"sweep\"}"), Ok(PolicyKind::Default));
        assert_eq!(parse("{\"policy\": \"\"}"), Ok(PolicyKind::Default));
        assert_eq!(parse("{\"policy\": \"greedy_contig\"}"), Ok(PolicyKind::GreedyContig));
        assert_eq!(parse("{\"policy\": \"no_thp\"}"), Ok(PolicyKind::NoThp));
        let err = parse("{\"policy\": \"bogus\"}").expect_err("unknown policy rejected");
        assert!(err.contains("bogus") && err.contains("greedy_contig"), "{err}");
    }

    #[test]
    fn sweep_options_clamp_and_parse_bench_lists() {
        let d = PolicyKind::Default;
        let o = sweep_options(Some(u64::MAX), Some(" Gobmk , ,Bzip2 "), Some(0), d, 0, 1000);
        assert_eq!(o.accesses, 1000, "clamped to max_accesses");
        assert_eq!(o.cores, 1, "cores 0 clamps to 1");
        assert_eq!(o.jobs, 1, "jobs 0 clamps to 1");
        assert_eq!(
            o.benchmarks,
            Some(vec!["Gobmk".to_string(), "Bzip2".to_string()]),
            "blank entries dropped"
        );
        let none = sweep_options(None, Some(" , "), None, d, 2, 1000);
        assert_eq!(none.benchmarks, None, "an all-blank list means all benchmarks");
    }

    #[test]
    fn sweep_csv_rejects_unknown_experiments() {
        let opts = ExperimentOptions::quick();
        assert!(sweep_csv("no-such-experiment", &opts).is_err());
    }

    #[test]
    fn scenario_and_tlb_names_round_trip() {
        assert!(parse_scenario("default").is_ok());
        assert!(parse_scenario("").is_ok());
        assert!(parse_scenario("no_ths").is_ok());
        assert!(parse_scenario("no_ths_low_compaction").is_ok());
        assert!(parse_scenario("memhog").is_err());
        for name in ["baseline", "colt_sa", "colt_fa", "colt_all", ""] {
            assert!(parse_tlb(name).is_ok(), "{name}");
        }
        assert!(parse_tlb("colt").is_err());
    }

    #[test]
    fn rejection_lines_carry_the_machine_readable_kind() {
        let quota = reject_line("quota", "over budget");
        crate::artifact::validate_json(&quota).unwrap();
        assert!(quota.contains("\"rejected\": \"quota\""));
        let busy = reject_line("busy", "queue full");
        assert!(busy.contains("\"rejected\": \"busy\""));
        crate::artifact::validate_json(&err_line("with \"quotes\" and \\slashes")).unwrap();
    }

    #[test]
    fn cache_entry_round_trips_including_escapes() {
        let key = "sweep {\"bench\": \"Gobmk\"}";
        let bytes = "{\"rows\": [1, 2],\n \"note\": \"\\\"quoted\\\"\"}";
        let body = encode_cache_entry(key, bytes);
        crate::artifact::validate_json(&body).unwrap();
        let decoded = decode_cache_entry(&body).unwrap().unwrap();
        assert_eq!(decoded, (key.to_string(), bytes.to_string()));
    }

    /// Satellite 3 for the serve-cache codec: under a bit flip at EVERY
    /// bit position, decode must never panic and never hand back bytes
    /// that differ from what was encoded. A flip may be survivable only
    /// if the decoded entry is byte-identical to the original (e.g. a
    /// flip inside trailing whitespace — this format has none).
    #[test]
    fn cache_entry_decode_never_accepts_a_flipped_byte() {
        let body = encode_cache_entry("k-1", "payload with \"structure\": [0, 1]");
        let original = decode_cache_entry(&body).unwrap().unwrap();
        let bytes = body.as_bytes();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.to_vec();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let text = String::from_utf8_lossy(&corrupt).into_owned();
            match decode_cache_entry(&text) {
                Err(_) => {}
                Ok(None) => {}
                Ok(Some(entry)) => assert_eq!(
                    entry, original,
                    "bit {bit} flipped silently into a different entry"
                ),
            }
        }
    }

    /// Truncation at every prefix length is either rejected or decodes
    /// to nothing — a torn tail can never warm the cache.
    #[test]
    fn cache_entry_decode_rejects_every_truncation() {
        let body = encode_cache_entry("k-2", "0123456789");
        for len in 0..body.len() {
            let prefix = &body[..len];
            assert!(
                !matches!(decode_cache_entry(prefix), Ok(Some(_))),
                "prefix of {len} bytes decoded as a valid entry"
            );
        }
    }

    #[test]
    fn legacy_v1_entries_are_skipped_not_quarantined() {
        let v1 = "{\"schema\": \"colt-serve-cache/v1\", \"key\": \"k\", \"bytes\": \"b\"}";
        assert_eq!(decode_cache_entry(v1).unwrap(), None);
        // A file claiming v2 without its checksum is damage, not legacy.
        let bad = format!("{{\"schema\": \"{CACHE_SCHEMA}\", \"key\": \"k\", \"bytes\": \"b\"}}");
        assert!(decode_cache_entry(&bad).is_err());
    }
}
