//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--accesses N] [--bench NAME[,NAME...]] [--jobs N] [--policy NAME] [--csv] <experiment>...
//! repro pressure [--faults rate=R,window=W,seed=S] [--cores N]
//! repro <experiment> --resume [--retries N]
//! repro --check [--seeds N] [--events N] [--jobs N] [--faults SPEC]
//! repro serve [--port N] [--port-file PATH] [--jobs N] [--quota N] ...
//! repro serve-bench --port N [--conns N] [--requests N] [--verify-sweep] ...
//! repro chaos-serve [--chaos rate=R,window=W,seed=S] [--conns N] ...
//! repro torture [--seeds N] [--io-faults rate=R,window=W,seed=S] ...
//!
//! experiments:
//!   table1        Table 1   real-system MPMIs, THS on/off
//!   fig7-9        Figures 7-9    contiguity CDFs, THS on
//!   fig10-12      Figures 10-12  contiguity CDFs, THS off
//!   fig13-15      Figures 13-15  contiguity CDFs, low compaction
//!   fig16-17      Figures 16-17  contiguity under memhog load
//!   fig18         Figure 18  % misses eliminated by CoLT-SA/FA/All
//!   fig19         Figure 19  index left-shift sweep
//!   fig20         Figure 20  associativity study
//!   fig21         Figure 21  performance vs perfect TLBs
//!   ablation      sec 7.1.3 fill-to-L2 + extra design ablations
//!   virt          sec 7.2 expectation: CoLT under nested paging
//!   related       sec 2.1/2.4: CoLT vs sequential TLB prefetching
//!   ctxswitch     extension: elimination vs TLB-flush frequency
//!   summary       scorecard: paper vs measured, in one table
//!   grid          contiguity across all twelve sec 5.1.1 configurations
//!   noise         seed-sensitivity of the headline averages
//!   multiprog     extension: two benchmarks sharing one machine
//!   smp_mix       extension: N-core mixes, tagged vs untagged, IPIs
//!   smp_scaling   extension: one mix swept over core counts
//!   pressure      robustness: fault-injection intensity sweep across
//!                 all 8 TLB configs (+ SMP leg with --cores N)
//!   policy        repro policy experiment: every shipped MM policy x
//!                 benchmarks x all 8 TLB configs (BENCH_policy.json)
//!   all           every single-core experiment above (the smp_* and
//!                 pressure extensions run when named; use --cores N
//!                 for width)
//! ```
//!
//! Every experiment journals each finished sweep cell (checksummed,
//! fsynced) to `results/journal/<experiment>.jsonl`; after a crash,
//! `--resume` with the *same flags* replays the journal and runs only
//! the missing cells, reproducing the deterministic result files
//! byte-for-byte. `--retries N` (default 1) retries failing cells with
//! backoff before quarantining them.
//!
//! `--io-faults SPEC` arms seeded *storage* fault injection for any
//! run: every durable write/read/fsync/rename goes through the
//! [`colt_core::vfs`] seam and may fail with ENOSPC, EIO, short writes,
//! failed or lying fsyncs, or read-back bit flips — all deterministic
//! under the seed, all accounted in a ledger printed at exit. Results
//! are unchanged (the layers degrade, they do not diverge), so the
//! spec is deliberately excluded from the resume fingerprint. The
//! `torture` subcommand sweeps fault schedules x simulated power-cut
//! points and gates five crash-consistency verdicts
//! (`results/BENCH_torture.json`).
//!
//! `--check` runs the differential translation oracle + coalescing
//! invariant fuzzer ([`colt_core::check`]) instead of experiments:
//! every TLB configuration is fuzzed with interleaved kernel events and
//! any violation fails the run with a ddmin-minimised reproducer.
//! `repro pressure --check` (or `--check --faults SPEC`) runs the same
//! oracle with deterministic memory-pressure fault injection armed:
//! allocation failures, compaction aborts, reclaim spikes, and
//! dropped/duplicated shootdown deliveries.

use colt_core::experiments::{
    policy, pressure, run_named, smp, ExperimentOptions,
};
use colt_core::artifact;
use colt_core::journal::Journal;
use colt_core::report::Table;
use colt_core::runner::{self, CellMetric};
use colt_core::snapshot_cache;
use colt_os_mem::faults::FaultConfig;
use colt_os_mem::policy::PolicyKind;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Every experiment name `repro` accepts (besides the `all` alias).
const EXPERIMENTS: [&str; 21] = [
    "table1", "fig7-9", "fig10-12", "fig13-15", "fig16-17", "fig18", "fig19",
    "fig20", "fig21", "ablation", "virt", "related", "ctxswitch", "summary",
    "grid", "noise", "multiprog", "smp_mix", "smp_scaling", "pressure",
    "policy",
];

/// The `all` alias: the single-core paper set (the `smp_*` extensions
/// run only when named, so default outputs stay identical to the
/// single-core reproduction).
const ALL: [&str; 17] = [
    "table1", "fig7-9", "fig10-12", "fig13-15", "fig16-17", "fig18", "fig19",
    "fig20", "fig21", "ablation", "virt", "related", "ctxswitch", "summary",
    "grid", "noise", "multiprog",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--accesses N] [--bench NAMES] [--jobs N] [--cores N] [--policy NAME] [--faults SPEC] [--resume] [--retries N] [--no-snapshot-cache] [--csv] [--bars] <experiment>...\n\
         \u{20}      repro --check [--seeds N] [--events N] [--jobs N] [--cores N] [--policy NAME] [--faults SPEC]\n\
         --jobs N   worker threads for the sweep runner (default: $COLT_JOBS,\n\
         \u{20}           then the machine's available parallelism); results are\n\
         \u{20}           identical at any value\n\
         --no-snapshot-cache  disable the preparation snapshot cache (both\n\
         \u{20}           the in-memory layer and results/snapshots/ on disk);\n\
         \u{20}           every cell re-prepares from scratch — use it to time\n\
         \u{20}           cold preparation or bypass a suspect snapshot; set\n\
         \u{20}           $COLT_SNAPSHOT_DIR to relocate the on-disk snapshots\n\
         --cores N  simulated cores for the smp_* experiments, the pressure\n\
         \u{20}           SMP leg, and the cross-core --check oracle (default 1)\n\
         --policy NAME  memory-management policy every scenario boots under\n\
         \u{20}           (default | greedy_contig | adversarial | no_thp |\n\
         \u{20}           defer_thp); 'default' reproduces the headline tables\n\
         \u{20}           byte-identically, the 'policy' experiment sweeps all\n\
         \u{20}           of them regardless; also honored by --check\n\
         --resume   replay results/journal/<experiment>.jsonl: completed\n\
         \u{20}           cells (same flags, verified checksum) are skipped,\n\
         \u{20}           only missing or failed cells re-run; the result\n\
         \u{20}           files come out byte-identical to an uninterrupted run\n\
         --retries N  retries per failing sweep cell before it is\n\
         \u{20}           quarantined (default 1; 0 = fail on first error)\n\
         --faults SPEC  deterministic fault injection, SPEC =\n\
         \u{20}           rate=R,window=W,seed=S (each key optional; defaults\n\
         \u{20}           rate=0.05, window=0 = always armed, seed=7); consumed\n\
         \u{20}           by the pressure experiment and by --check\n\
         --io-faults SPEC  seeded storage fault injection (same SPEC syntax):\n\
         \u{20}           durable writes/reads/fsyncs/renames may fail with\n\
         \u{20}           ENOSPC, EIO, short writes, lying fsyncs, or bit\n\
         \u{20}           flips; every layer degrades gracefully and results\n\
         \u{20}           are byte-identical to an unfaulted run; the\n\
         \u{20}           injected-vs-accounted ledger prints at exit (not\n\
         \u{20}           part of the --resume fingerprint)\n\
         --check    fuzz every TLB configuration against the translation\n\
         \u{20}           oracle + coalescing invariant checker; exits nonzero\n\
         \u{20}           on any violation (--seeds, default 4; --events per\n\
         \u{20}           case, default 160); with --cores > 1 the cross-core\n\
         \u{20}           SMP oracle runs too; 'repro pressure --check' arms\n\
         \u{20}           fault injection under the same oracle\n\
         subcommands:\n\
         \u{20} serve        long-running translation/sweep server over TCP\n\
         \u{20}              (line-delimited JSON; 'repro serve --help')\n\
         \u{20} serve-bench  load generator + determinism checker for serve;\n\
         \u{20}              writes results/BENCH_serve.json\n\
         \u{20} chaos-serve  seeded network-fault soak of serve (deadlines,\n\
         \u{20}              retries, shedding, drain); writes\n\
         \u{20}              results/BENCH_chaos.json, nonzero exit on any\n\
         \u{20}              failed verdict\n\
         \u{20} torture      crash-consistency torture: fault schedules x\n\
         \u{20}              simulated power cuts, five gated verdicts\n\
         \u{20}              ('repro torture --help'); writes\n\
         \u{20}              results/BENCH_torture.json, nonzero exit on any\n\
         \u{20}              failed verdict\n\
         experiments: {} all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

/// Reports `.corrupt-<n>` quarantine files left under the journal and
/// snapshot directories by earlier crashed runs — count and paths, on
/// stderr, so the evidence is seen instead of silently piling up. The
/// files themselves are left alone (they are the post-mortem). Leaked
/// `*.tmp-*` staging files, by contrast, are pure litter (a crash
/// between create and rename): those are swept — reported and removed
/// — across all of `results/`, recursively, which covers the journal
/// and snapshot directories too.
fn report_quarantined() {
    let mut found = Vec::new();
    for dir in ["results/journal", "results/snapshots"] {
        found.extend(artifact::find_quarantined(Path::new(dir)));
    }
    if !found.is_empty() {
        eprintln!(
            "warning: {} quarantined artifact(s) from earlier crashed runs:",
            found.len()
        );
        for path in &found {
            eprintln!("warning:   {}", path.display());
        }
        eprintln!(
            "warning: inspect or delete them; new runs never read or overwrite \
             quarantine files"
        );
    }
    let swept = artifact::sweep_tmp_litter(Path::new("results"));
    if !swept.is_empty() {
        eprintln!(
            "warning: removed {} leaked tmp file(s) from interrupted writes:",
            swept.len()
        );
        for path in &swept {
            eprintln!("warning:   {}", path.display());
        }
    }
}

/// Prints the `--io-faults` injected-vs-accounted ledger at exit: each
/// error kind the seam injected next to what the degradation sites
/// accounted, plus the flip-detection tallies. The two columns matching
/// is the storage analogue of the chaos soak's conservation checks.
fn print_io_fault_ledger(faulty: &colt_core::vfs::FaultyVfs) {
    let counts = faulty.counts();
    let ledger = colt_core::io_faults::ledger();
    eprintln!(
        "io-faults ledger: {} injected ({} errors, {} bit flips, {} lying fsyncs), \
         {} accounted",
        counts.total(),
        counts.errors(),
        counts.bit_flips,
        counts.sync_lies,
        ledger.accounted.errors(),
    );
    for (name, injected, accounted) in counts.rows(&ledger.accounted) {
        if injected > 0 || accounted > 0 {
            eprintln!("io-faults:   {name}: injected {injected}, accounted {accounted}");
        }
    }
    eprintln!(
        "io-faults:   bit flips: injected {}, detected {}, pending {}; renames \
         left unsynced: {}",
        counts.bit_flips,
        ledger.flips_detected,
        ledger.flips_pending,
        faulty.renames_dropped(),
    );
    if !ledger.by_layer.is_empty() {
        let layers: Vec<String> = ledger
            .by_layer
            .iter()
            .map(|(layer, n)| format!("{layer} {n}"))
            .collect();
        eprintln!("io-faults:   accounted by layer: {}", layers.join(", "));
    }
}

/// Clamps a zero flag value to 1, telling the user instead of silently
/// rewriting what they asked for.
fn clamp_flag(flag: &str, n: u64) -> u64 {
    if n == 0 {
        eprintln!("warning: {flag} 0 is meaningless; clamping to {flag} 1");
        1
    } else {
        n
    }
}

fn main() -> ExitCode {
    // The CLI wants preparation snapshots to survive the process (the
    // library default is memory-only, keeping test binaries hermetic).
    snapshot_cache::set_disk_persistence(true);
    // The serve subcommands own their argument lists entirely.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("serve") => return colt_core::serve::cli(&raw[1..]),
        Some("serve-bench") => return colt_core::serve_bench::cli(&raw[1..]),
        Some("chaos-serve") => return colt_core::chaos_serve::cli(&raw[1..]),
        Some("torture") => return colt_core::experiments::torture::cli(&raw[1..]),
        _ => {}
    }
    // Quarantine files are crash evidence a human should look at; say
    // so loudly before any new run buries them deeper.
    report_quarantined();
    let mut opts = ExperimentOptions::default();
    if let Ok(jobs) = std::env::var("COLT_JOBS") {
        match jobs.parse::<u64>() {
            Ok(j) => opts.jobs = clamp_flag("COLT_JOBS", j) as usize,
            Err(_) => eprintln!(
                "warning: COLT_JOBS='{jobs}' is not a number; using {} worker \
                 thread(s) instead",
                opts.jobs
            ),
        }
    }
    let mut csv = false;
    let mut bars = false;
    let mut check = false;
    let mut resume = false;
    let mut io_faults: Option<FaultConfig> = None;
    let mut seeds = 4u64;
    let mut events_per_case = 160usize;
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.accesses = ExperimentOptions::quick().accesses,
            "--check" => check = true,
            "--resume" => resume = true,
            "--retries" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.retries = n.parse::<u32>().unwrap_or_else(|_| usage());
            }
            "--seeds" => {
                let n = args.next().unwrap_or_else(|| usage());
                seeds = clamp_flag("--seeds", n.parse::<u64>().unwrap_or_else(|_| usage()));
            }
            "--events" => {
                let n = args.next().unwrap_or_else(|| usage());
                events_per_case =
                    clamp_flag("--events", n.parse::<u64>().unwrap_or_else(|_| usage()))
                        as usize;
            }
            "--accesses" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.accesses = n.parse().unwrap_or_else(|_| usage());
            }
            "--bench" => {
                let names = args.next().unwrap_or_else(|| usage());
                opts.benchmarks =
                    Some(names.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--jobs" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.jobs =
                    clamp_flag("--jobs", n.parse::<u64>().unwrap_or_else(|_| usage())) as usize;
            }
            "--cores" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.cores =
                    clamp_flag("--cores", n.parse::<u64>().unwrap_or_else(|_| usage())) as usize;
            }
            "--faults" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match FaultConfig::parse(&spec) {
                    Ok(fc) => opts.faults = Some(fc),
                    Err(e) => {
                        eprintln!("--faults {spec}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--io-faults" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match FaultConfig::parse(&spec) {
                    Ok(fc) => io_faults = Some(fc),
                    Err(e) => {
                        eprintln!("--io-faults {spec}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--policy" => {
                let name = args.next().unwrap_or_else(|| usage());
                match name.parse::<PolicyKind>() {
                    Ok(kind) => opts.policy = kind,
                    Err(e) => {
                        eprintln!("--policy {name}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--no-snapshot-cache" => snapshot_cache::set_enabled(false),
            "--csv" => csv = true,
            "--bars" => bars = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    let faulty_vfs = io_faults.map(|fc| {
        // Armed for the whole process: every durable write, read,
        // fsync, and rename below flows through the seam. The spec is
        // deliberately NOT part of the resume fingerprint — injected
        // storage faults never change results, only durability. The
        // clone shares state with the installed seam, so the exit
        // ledger reads live counts.
        colt_core::io_faults::reset_ledger();
        let faulty = colt_core::vfs::FaultyVfs::new(fc);
        colt_core::vfs::install(Arc::new(faulty.clone()));
        eprintln!(
            "io-faults armed: rate {}, window {}, seed {}",
            fc.rate, fc.window, fc.seed
        );
        faulty
    });
    if check {
        // `repro pressure --check` = the oracle under fault injection
        // (default plan when --faults was not given). Any other
        // experiment name alongside --check is a mistake.
        let faults = match experiments.as_slice() {
            [] => opts.faults,
            [only] if only == "pressure" => Some(opts.faults.unwrap_or_default()),
            _ => {
                eprintln!("--check runs instead of experiments; drop '{}'", experiments[0]);
                return ExitCode::from(2);
            }
        };
        if csv || bars {
            eprintln!(
                "--check produces a pass/fail report, not tables; drop {}",
                if csv { "--csv" } else { "--bars" }
            );
            return ExitCode::from(2);
        }
        return run_check_mode(
            seeds,
            events_per_case,
            opts.jobs,
            opts.cores,
            faults,
            opts.policy,
        );
    }
    if experiments.is_empty() {
        usage();
    }
    // Validate every name before running anything, so a typo at the end
    // of the list fails fast instead of after minutes of simulation.
    let unknown: Vec<&str> = experiments
        .iter()
        .map(String::as_str)
        .filter(|e| *e != "all" && !EXPERIMENTS.contains(e))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {}\nvalid experiments: {} all",
            unknown.join(", "),
            EXPERIMENTS.join(" ")
        );
        return ExitCode::from(2);
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }

    // Before writing anything, inspect the result files a previous run
    // left behind: a corrupt file is quarantined (never clobbered) and
    // reported, so partial writes from a crash are evidence, not traps.
    for name in [
        "BENCH_sweep.json",
        "BENCH_smp.json",
        "BENCH_pressure.json",
        "BENCH_policy.json",
    ] {
        let path = Path::new("results").join(name);
        match artifact::quarantine_if_corrupt(&path) {
            Ok(Some(q)) => eprintln!(
                "warning: existing {} is not valid JSON (likely a crashed run); \
                 quarantined to {}",
                path.display(),
                q.display()
            ),
            Ok(None) => {}
            Err(e) => eprintln!("warning: could not inspect {}: {e}", path.display()),
        }
    }

    let _ = runner::take_metrics();
    let _ = snapshot_cache::take_stats();
    let wall_start = Instant::now();
    let mut smp_rows: Vec<smp::SmpRow> = Vec::new();
    let mut pressure_report: Option<pressure::PressureReport> = None;
    let mut policy_report: Option<policy::PolicyReport> = None;
    let journal_dir = Path::new("results").join("journal");
    for exp in &experiments {
        // Each experiment gets its own durable journal; completed cells
        // are fsynced as they finish, and --resume replays them here.
        let mut opts = opts.clone();
        match Journal::open(&journal_dir, exp, opts.fingerprint(exp), resume) {
            Ok(journal) => {
                let r = journal.open_report();
                if resume && r.replayed == 0 && r.fingerprint_mismatches > 0 {
                    eprintln!(
                        "error: --resume found {} journal record(s) for '{exp}' in {} \
                         but every one was written under different flags (fingerprint \
                         mismatch). Conflicting flags — --policy, --accesses, --seed, \
                         --bench, --cores, --faults — must match the original run; \
                         re-run with the original flags, or drop --resume to start over.",
                        r.fingerprint_mismatches,
                        journal.path().display()
                    );
                    return ExitCode::from(2);
                }
                if resume && !csv {
                    println!(
                        "resume({exp}): {} cell(s) replayed from {}, {} to re-run \
                         ({} failed, {} flag-mismatched, {} corrupt, {} wrong-version)",
                        r.replayed,
                        journal.path().display(),
                        r.failed_records
                            + r.fingerprint_mismatches
                            + r.corrupt_lines
                            + r.version_skipped,
                        r.failed_records,
                        r.fingerprint_mismatches,
                        r.corrupt_lines,
                        r.version_skipped,
                    );
                }
                opts.journal = Some(Arc::new(journal));
            }
            Err(e) => eprintln!(
                "warning: could not open journal {}: {e}; running '{exp}' without \
                 crash-safe progress",
                journal_dir.join(format!("{exp}.jsonl")).display()
            ),
        }
        let run = run_named(exp, &opts)
            .unwrap_or_else(|| unreachable!("experiment '{exp}' passed validation"));
        smp_rows.extend(run.smp_rows);
        if let Some(report) = run.pressure {
            pressure_report = Some(report);
        }
        if let Some(report) = run.policy {
            policy_report = Some(report);
        }
        let output = run.output;
        if csv {
            for table in &output.tables {
                println!("{}", table.to_csv());
            }
        } else {
            println!("{}", output.render());
            if bars {
                for table in &output.tables {
                    // Chart the last numeric column against row labels.
                    for col in (1..table.width()).rev() {
                        let items = table.numeric_column(col);
                        if items.len() > 1 {
                            println!("{}", colt_core::report::bar_chart(&items, 40));
                            break;
                        }
                    }
                }
            }
        }
    }

    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let metrics = runner::take_metrics();
    let cache = snapshot_cache::take_stats();
    // All three result files go through the same atomic, read-back
    // verified write; a failed write is a failed run, never a warning
    // that exits 0.
    let mut write_failed = false;
    let mut write_result = |path: &str, json: &str, what: &str| {
        let _ = std::fs::create_dir_all("results");
        match artifact::atomic_write_json(Path::new(path), json) {
            Ok(written) => {
                if !csv {
                    println!("{what} written to {written}");
                }
            }
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                write_failed = true;
            }
        }
    };
    if !metrics.is_empty() {
        if !csv {
            println!(
                "{}",
                throughput_table(&metrics, opts.jobs, wall_seconds, &cache).render()
            );
        }
        let json = artifact::sweep_json(&metrics, opts.jobs, wall_seconds, &cache);
        write_result("results/BENCH_sweep.json", &json, "throughput details");
    }
    if !smp_rows.is_empty() {
        let json = artifact::smp_json(&smp_rows, opts.cores);
        write_result("results/BENCH_smp.json", &json, "SMP details");
    }
    if let Some(report) = &pressure_report {
        let json =
            artifact::pressure_json(report, opts.faults.unwrap_or_default(), opts.cores);
        write_result("results/BENCH_pressure.json", &json, "pressure details");
    }
    if let Some(report) = &policy_report {
        let json = artifact::policy_json(report);
        write_result("results/BENCH_policy.json", &json, "policy details");
    }
    drop(write_result);
    if let Some(faulty) = &faulty_vfs {
        print_io_fault_ledger(faulty);
    }
    if write_failed {
        eprintln!("one or more result files could not be written; failing the run");
        return ExitCode::FAILURE;
    }
    if let Some(report) = &pressure_report {
        if !report.failures.is_empty() {
            eprintln!(
                "pressure sweep completed with {} failed cell(s) (see the failure \
                 report above and results/BENCH_pressure.json)",
                report.failures.len()
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(report) = &policy_report {
        if !report.failures.is_empty() {
            eprintln!(
                "policy sweep completed with {} failed cell(s) (see the failure \
                 report above and results/BENCH_policy.json)",
                report.failures.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs the oracle/invariant fuzzer across every TLB configuration,
/// plus the cross-core SMP oracle when `cores > 1`. Drains the sweep
/// runner's metrics without writing `results/BENCH_sweep.json` so a
/// `--check` run never perturbs the performance baseline that
/// `scripts/verify.sh` gates on.
fn run_check_mode(
    seeds: u64,
    events_per_case: usize,
    jobs: usize,
    cores: usize,
    faults: Option<FaultConfig>,
    policy: PolicyKind,
) -> ExitCode {
    let _ = runner::take_metrics();
    let wall_start = Instant::now();
    let mut report = colt_core::check::run_check_with_policy(
        seeds,
        events_per_case,
        jobs,
        faults,
        policy,
    );
    if cores > 1 {
        let smp_report = colt_core::check::run_smp_check_with_policy(
            cores, seeds, jobs, faults, policy,
        );
        report.translations += smp_report.translations;
        report.cases.extend(smp_report.cases);
    }
    let _ = runner::take_metrics();
    let wall = wall_start.elapsed().as_secs_f64();

    let armed = faults.map_or_else(String::new, |f| {
        format!(", faults armed (rate {}, window {}, seed {})", f.rate, f.window, f.seed)
    });
    let armed = if policy == PolicyKind::Default {
        armed
    } else {
        format!("{armed}, policy {}", policy.name())
    };
    let mut table = Table::new(
        format!(
            "Oracle + invariant check: {} case(s), {} translations, {wall:.2}s wall{armed}",
            report.cases.len(),
            report.translations
        ),
        &["case", "translations", "violations"],
    );
    for case in &report.cases {
        table.add_row(vec![
            case.label.clone(),
            case.translations.to_string(),
            case.violations.len().to_string(),
        ]);
    }
    println!("{}", table.render());

    if report.is_clean() {
        println!("CHECK PASS: 0 violations across {} case(s)", report.cases.len());
        return ExitCode::SUCCESS;
    }
    for case in report.cases.iter().filter(|c| !c.violations.is_empty()) {
        eprintln!("\nFAIL {} (gen seed {:#x})", case.label, case.seed);
        for v in &case.violations {
            eprintln!("  violation: {v}");
        }
        eprintln!("  minimised reproducer ({} events):", case.minimized.len());
        for ev in &case.minimized {
            eprintln!("    {ev:?}");
        }
    }
    eprintln!(
        "\nCHECK FAIL: {} violation(s) across {} case(s)",
        report.total_violations(),
        report.cases.len()
    );
    ExitCode::FAILURE
}

/// One row per experiment (cells grouped by label prefix up to the
/// first '/'), plus aggregate rows.
///
/// The speedup row estimates one thread's wall-clock as the sum of what
/// every cell actually paid (prep + sim) — with a warm snapshot cache
/// the prep terms are near zero, so the estimate stays honest instead
/// of crediting the cache's savings to parallelism. Steady-state
/// simulation throughput is labeled separately (prep-amortized), over
/// only the cells that simulate anything (refs > 0).
fn throughput_table(
    metrics: &[CellMetric],
    jobs: usize,
    wall_seconds: f64,
    cache: &snapshot_cache::CacheStats,
) -> Table {
    let mut table = Table::new(
        format!("Sweep throughput: {jobs} worker thread(s), {wall_seconds:.2}s wall"),
        &["experiment", "cells", "refs", "cpu seconds", "refs/sec (cpu)"],
    );
    // Group in first-appearance order to keep the table deterministic.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: std::collections::HashMap<&str, (u64, u64, f64)> =
        std::collections::HashMap::new();
    for m in metrics {
        let exp = m.label.split('/').next().unwrap_or("?");
        let entry = groups.entry(exp).or_insert_with(|| {
            order.push(exp);
            (0, 0, 0.0)
        });
        entry.0 += 1;
        entry.1 += m.refs;
        entry.2 += m.prep_seconds + m.sim_seconds;
    }
    for exp in &order {
        let (cells, refs, secs) = groups[exp];
        table.add_row(vec![
            (*exp).to_string(),
            cells.to_string(),
            refs.to_string(),
            format!("{secs:.2}"),
            format!("{:.0}", refs as f64 / secs.max(1e-9)),
        ]);
    }
    let total_refs: u64 = metrics.iter().map(|m| m.refs).sum();
    let serial = artifact::serial_seconds_estimate(metrics);
    table.add_row(vec![
        "TOTAL".to_string(),
        metrics.len().to_string(),
        total_refs.to_string(),
        format!("{serial:.2}"),
        format!("{:.0}", total_refs as f64 / wall_seconds.max(1e-9)),
    ]);
    let sim_cells = metrics.iter().filter(|m| m.refs > 0).count();
    let sim_secs: f64 =
        metrics.iter().filter(|m| m.refs > 0).map(|m| m.sim_seconds).sum();
    table.add_row(vec![
        "refs/sec (prep-amortized)".to_string(),
        sim_cells.to_string(),
        total_refs.to_string(),
        format!("{sim_secs:.2} sim"),
        format!("{:.0}", artifact::prep_amortized_refs_per_sec(metrics)),
    ]);
    table.add_row(vec![
        "prep cache".to_string(),
        format!("{} hit(s)", cache.hits()),
        format!("{} miss(es)", cache.misses),
        format!("{:.2} snap", cache.snapshot_seconds),
        "-".to_string(),
    ]);
    table.add_row(vec![
        "speedup vs 1 thread (est)".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{wall_seconds:.2} wall"),
        format!("{:.2}x", serial / wall_seconds.max(1e-9)),
    ]);
    table
}
