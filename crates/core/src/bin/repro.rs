//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--accesses N] [--bench NAME[,NAME...]] [--csv] <experiment>...
//!
//! experiments:
//!   table1        Table 1   real-system MPMIs, THS on/off
//!   fig7-9        Figures 7-9    contiguity CDFs, THS on
//!   fig10-12      Figures 10-12  contiguity CDFs, THS off
//!   fig13-15      Figures 13-15  contiguity CDFs, low compaction
//!   fig16-17      Figures 16-17  contiguity under memhog load
//!   fig18         Figure 18  % misses eliminated by CoLT-SA/FA/All
//!   fig19         Figure 19  index left-shift sweep
//!   fig20         Figure 20  associativity study
//!   fig21         Figure 21  performance vs perfect TLBs
//!   ablation      sec 7.1.3 fill-to-L2 + extra design ablations
//!   virt          sec 7.2 expectation: CoLT under nested paging
//!   related       sec 2.1/2.4: CoLT vs sequential TLB prefetching
//!   ctxswitch     extension: elimination vs TLB-flush frequency
//!   summary       scorecard: paper vs measured, in one table
//!   grid          contiguity across all twelve sec 5.1.1 configurations
//!   noise         seed-sensitivity of the headline averages
//!   multiprog     extension: two benchmarks sharing one machine
//!   all           everything above
//! ```

use colt_core::experiments::{
    ablation, associativity, context_switch, contiguity, grid, index_shift,
    memhog_load, miss_elimination, multiprog, noise, performance, related_work,
    summary, table1, virtualization, ExperimentOptions, ExperimentOutput,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--accesses N] [--bench NAMES] [--csv] [--bars] <experiment>...\n\
         experiments: table1 fig7-9 fig10-12 fig13-15 fig16-17 fig18 fig19 fig20 fig21 ablation virt related ctxswitch summary grid noise multiprog all"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = ExperimentOptions::default();
    let mut csv = false;
    let mut bars = false;
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.accesses = ExperimentOptions::quick().accesses,
            "--accesses" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.accesses = n.parse().unwrap_or_else(|_| usage());
            }
            "--bench" => {
                let names = args.next().unwrap_or_else(|| usage());
                opts.benchmarks =
                    Some(names.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--csv" => csv = true,
            "--bars" => bars = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1", "fig7-9", "fig10-12", "fig13-15", "fig16-17", "fig18", "fig19",
            "fig20", "fig21", "ablation", "virt", "related", "ctxswitch", "summary", "grid", "noise", "multiprog",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for exp in &experiments {
        let output: ExperimentOutput = match exp.as_str() {
            "table1" => table1::run(&opts).1,
            "fig7-9" => contiguity::run(contiguity::ContiguityConfig::ThsOn, &opts).1,
            "fig10-12" => contiguity::run(contiguity::ContiguityConfig::ThsOff, &opts).1,
            "fig13-15" => {
                contiguity::run(contiguity::ContiguityConfig::LowCompaction, &opts).1
            }
            "fig16-17" => memhog_load::run(&opts).1,
            "fig18" => miss_elimination::run(&opts).1,
            "fig19" => index_shift::run(&opts).1,
            "fig20" => associativity::run(&opts).1,
            "fig21" => performance::run(&opts).1,
            "ablation" => ablation::run(&opts).1,
            "virt" => virtualization::run(&opts).1,
            "related" => related_work::run(&opts).1,
            "ctxswitch" => context_switch::run(&opts).1,
            "summary" => summary::run(&opts).1,
            "grid" => grid::run(&opts).1,
            "noise" => noise::run(&opts).1,
            "multiprog" => multiprog::run(&opts).1,
            other => {
                eprintln!("unknown experiment '{other}'");
                return ExitCode::from(2);
            }
        };
        if csv {
            for table in &output.tables {
                println!("{}", table.to_csv());
            }
        } else {
            println!("{}", output.render());
            if bars {
                for table in &output.tables {
                    // Chart the last numeric column against row labels.
                    for col in (1..table.width()).rev() {
                        let items = table.numeric_column(col);
                        if items.len() > 1 {
                            println!("{}", colt_core::report::bar_chart(&items, 40));
                            break;
                        }
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
