//! Parallel sweep runner: fans independent (benchmark × scenario ×
//! TLB-config) simulation cells out across a work-stealing scheduler
//! on scoped threads.
//!
//! Every experiment driver is a sweep over cells that share nothing but
//! a prepared workload, so the runner provides exactly four guarantees:
//!
//! 1. **Determinism** — results come back in submission order, and each
//!    cell's simulation consumes only its own [`SimConfig`]-seeded RNG
//!    streams, so the rendered tables are byte-identical regardless of
//!    `jobs` (and regardless of how many cells were replayed from a
//!    journal rather than executed).
//! 2. **Shared preparation, no convoying** — cells that name the same
//!    (scenario, benchmark) pair share one [`PreparedWorkload`], built
//!    once (or decoded from the process-global
//!    [`snapshot_cache`](crate::snapshot_cache)) by whichever worker
//!    gets there first and handed out as an `Arc`. A cell that finds
//!    its preparation *in flight* parks on the slot instead of
//!    blocking its worker: the worker steals other cells in the
//!    meantime, and the parked cells are requeued the moment the build
//!    lands. Work distribution is per-worker deques (pop-front own
//!    work, steal-back others'), so one slow preparation never idles
//!    the rest of the pool.
//! 3. **Supervised failure** — a cell that panics, whose preparation
//!    fails, or that exceeds the hard deadline is *retried* up to
//!    `retries` times with exponential backoff and a
//!    perturbed-but-deterministic requeue position; a cell that
//!    exhausts its retries becomes [`CellOutcome::Quarantined`] while
//!    every other cell still completes. The legacy
//!    [`run_cells`]/[`run_tasks`] entry points keep the old fail-fast,
//!    zero-retry contract.
//! 4. **Durable progress** — the `*_sweep` entry points append one
//!    checksummed record per finished cell to the experiment's
//!    [`Journal`](crate::journal), fsynced before the result is even
//!    reported, so a `SIGKILL` at any instant loses at most the cells
//!    in flight; `--resume` replays the journal and runs only the rest.
//!
//! Deadlines: `COLT_CELL_SOFT_DEADLINE` (default 120 s, 0 disables)
//! only warns — killing a thread mid-simulation would corrupt nothing
//! but help nobody. `COLT_CELL_HARD_DEADLINE` (default 0 = off) arms
//! the watchdog: the attempt runs on a supervised thread and is
//! abandoned (then retried, then quarantined) when it exceeds the
//! budget. A garbage value in either variable earns one loud stderr
//! note naming the variable and the value actually used — never a
//! silent fallback.
//!
//! Implementation is std-only (`std::thread::scope`, channels, locks):
//! the build must work offline, so no rayon or crates.io dependency.

use crate::journal::{Journal, JournalPayload};
use crate::sim::{self, SimConfig, SimResult};
use crate::snapshot_cache;
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::BenchmarkSpec;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

/// One unit of parallel work: a job run against a prepared workload.
/// The job is an `Arc<dyn Fn>` (not `FnOnce`) so the supervisor can
/// re-run it on retry and hand it to a watchdog thread.
pub struct SweepCell<R> {
    label: String,
    scenario: Scenario,
    spec: BenchmarkSpec,
    /// Memory references the job will simulate (0 for analysis-only
    /// cells such as contiguity scans) — feeds the throughput report.
    refs: u64,
    job: Arc<dyn Fn(&PreparedWorkload) -> R + Send + Sync>,
}

impl<R> SweepCell<R> {
    /// A cell running an arbitrary job against the prepared workload.
    pub fn new(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        refs: u64,
        job: impl Fn(&PreparedWorkload) -> R + Send + Sync + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            scenario: scenario.clone(),
            spec: spec.clone(),
            refs,
            job: Arc::new(job),
        }
    }
}

impl SweepCell<SimResult> {
    /// The common case: simulate the workload under one TLB config.
    pub fn sim(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        cfg: SimConfig,
    ) -> Self {
        let refs = cfg.warmup + cfg.accesses;
        Self::new(label, scenario, spec, refs, move |w| sim::run(w, &cfg))
    }
}

/// One unit of parallel work that owns its whole job (no shared
/// preparation) — for drivers like `multiprog` whose preparation is
/// itself per-cell.
pub struct SweepTask<R> {
    label: String,
    refs: u64,
    expires_at: Option<Instant>,
    job: Arc<dyn Fn() -> R + Send + Sync>,
}

impl<R> SweepTask<R> {
    /// Creates a self-contained task.
    pub fn new(
        label: impl Into<String>,
        refs: u64,
        job: impl Fn() -> R + Send + Sync + 'static,
    ) -> Self {
        Self { label: label.into(), refs, expires_at: None, job: Arc::new(job) }
    }

    /// Attaches a dispatch deadline: if the engine picks the task up
    /// after `at`, it fails with [`EXPIRED_IN_QUEUE`] *without running*
    /// — under overload, work whose requester already deadlined out
    /// must not burn a worker slot. Final (never retried).
    pub fn with_expiry(mut self, at: Instant) -> Self {
        self.expires_at = Some(at);
        self
    }
}

/// Failure payload of a task whose [`SweepTask::with_expiry`] deadline
/// passed while it waited for a worker. Callers (the serve dispatcher)
/// match on this to answer `deadline_exceeded` instead of `error`.
pub const EXPIRED_IN_QUEUE: &str = "deadline exceeded before dispatch";

/// What became of one sweep cell: its result, or a description of why
/// it died while the rest of the sweep carried on.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// The cell ran to completion (or was replayed from the journal).
    Ok(R),
    /// The cell's only attempt failed (zero-retry sweeps): preparation
    /// failed or the job panicked; `payload` is the cause.
    Failed {
        /// Label of the failed cell ("fig18/Mcf/CoLT-All").
        label: String,
        /// Human-readable failure cause.
        payload: String,
    },
    /// The cell failed every attempt the watchdog allowed it and was
    /// quarantined: the sweep completed around it, the journal records
    /// it, and the run exits nonzero.
    Quarantined {
        /// Label of the quarantined cell.
        label: String,
        /// Attempts consumed (first try + retries).
        attempts: u32,
        /// Cause of the final failure (panic message, preparation
        /// error, or hard-deadline expiry).
        reason: String,
    },
}

impl<R> CellOutcome<R> {
    /// The success value, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            CellOutcome::Failed { .. } | CellOutcome::Quarantined { .. } => None,
        }
    }

    /// True when the cell failed or was quarantined.
    pub fn is_failed(&self) -> bool {
        !matches!(self, CellOutcome::Ok(_))
    }

    /// Unwraps the success value, re-panicking with the recorded cause
    /// — the fail-fast behaviour of the legacy entry points.
    fn unwrap_or_panic(self) -> R {
        match self {
            CellOutcome::Ok(r) => r,
            CellOutcome::Failed { label, payload } => {
                panic!("sweep cell '{label}' failed: {payload}")
            }
            CellOutcome::Quarantined { label, attempts, reason } => {
                panic!(
                    "sweep cell '{label}' quarantined after {attempts} attempt(s): {reason}"
                )
            }
        }
    }
}

/// Unwraps every outcome, panicking on the first failed/quarantined
/// cell — for drivers whose sweeps must be all-or-nothing.
pub fn expect_all<R>(outcomes: Vec<CellOutcome<R>>) -> Vec<R> {
    outcomes.into_iter().map(CellOutcome::unwrap_or_panic).collect()
}

/// Timing record for one completed cell, for the throughput report.
#[derive(Clone, Debug)]
pub struct CellMetric {
    /// Cell label ("fig18/Mcf/CoLT-All").
    pub label: String,
    /// Benchmark name ("" for self-contained tasks).
    pub benchmark: String,
    /// Scenario name ("" for self-contained tasks).
    pub scenario: String,
    /// Memory references simulated (0 for analysis-only cells).
    pub refs: u64,
    /// Seconds this cell spent building the shared workload (0 when it
    /// reused another cell's preparation).
    pub prep_seconds: f64,
    /// Seconds the job itself ran.
    pub sim_seconds: f64,
}

static METRICS: Mutex<Vec<CellMetric>> = Mutex::new(Vec::new());

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Every runner structure is either append-only (metrics), a work queue
/// whose items are consumed whole, or a prep slot that a failed builder
/// leaves `None` (retryable) — so the data is consistent even after a
/// mid-critical-section panic and poisoning carries no information.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Parses a non-negative seconds value from `var`, printing one loud
/// note (per variable, per process) when the value is garbage instead
/// of silently falling back.
fn env_seconds(var: &'static str, default: f64, warned: &'static Once) -> f64 {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(v) if v >= 0.0 && v.is_finite() => v,
            _ => {
                warned.call_once(|| {
                    eprintln!(
                        "warning: {var}='{raw}' is not a non-negative number of \
                         seconds; using the default of {default} instead"
                    );
                });
                default
            }
        },
    }
}

static SOFT_WARNED: Once = Once::new();
static HARD_WARNED: Once = Once::new();

/// Soft wall-clock budget for one cell, in seconds. Cells that run
/// longer only earn a stderr warning — killing a thread mid-simulation
/// would corrupt nothing but help nobody — but the warning makes hung
/// cells visible in otherwise-silent long sweeps. Override with
/// `COLT_CELL_SOFT_DEADLINE=<seconds>` (0 disables).
fn cell_soft_deadline() -> f64 {
    env_seconds("COLT_CELL_SOFT_DEADLINE", 120.0, &SOFT_WARNED)
}

/// Hard wall-clock budget for one cell attempt, in seconds. 0 (the
/// default) disables the watchdog; any positive value runs each job on
/// a supervised thread that is abandoned on expiry, which counts as a
/// failed attempt (retried, then quarantined). Override with
/// `COLT_CELL_HARD_DEADLINE=<seconds>`.
fn cell_hard_deadline() -> f64 {
    env_seconds("COLT_CELL_HARD_DEADLINE", 0.0, &HARD_WARNED)
}

fn warn_if_over_deadline(label: &str, seconds: f64, deadline: f64) {
    if deadline > 0.0 && seconds > deadline {
        eprintln!(
            "warning: cell '{label}' ran {seconds:.1}s (soft deadline {deadline:.0}s)"
        );
    }
}

/// Drains the metrics accumulated by every runner call since the last
/// drain, in cell-submission order.
pub fn take_metrics() -> Vec<CellMetric> {
    std::mem::take(&mut *relock(&METRICS))
}

/// Supervision policy for one sweep: worker width, the watchdog's
/// retry budget and hard deadline, and the durable journal (if the
/// invocation wants crash-safe progress).
pub struct SweepOptions<'a> {
    /// Worker threads. Results are identical at any value.
    pub jobs: usize,
    /// Retries per failing cell beyond its first attempt (so a cell
    /// runs at most `retries + 1` times). `repro --retries N`,
    /// default 1.
    pub retries: u32,
    /// Hard per-attempt deadline in seconds; `None` reads
    /// `COLT_CELL_HARD_DEADLINE` (default 0 = off).
    pub hard_deadline: Option<f64>,
    /// Durable cell journal for crash-safe progress and `--resume`.
    pub journal: Option<&'a Journal>,
}

impl SweepOptions<'_> {
    /// A plain policy: `jobs` workers, no retries, no journal.
    pub fn jobs_only(jobs: usize) -> Self {
        SweepOptions { jobs, retries: 0, hard_deadline: None, journal: None }
    }
}

/// One sweep-local preparation slot. The slot exists so that, within a
/// sweep, exactly one worker builds each (scenario, spec) pair while
/// cells that arrive during the build *park* on the slot (their worker
/// moves on to other work) instead of blocking behind a lock. The
/// actual build — memory cache, disk snapshot, or a fresh
/// `Scenario::prepare` — is delegated to [`snapshot_cache`].
enum SlotState {
    /// Nobody has built this pair yet (or the last build failed, which
    /// leaves the slot retryable rather than wedged).
    Empty,
    /// A worker is building right now; arriving cells park in `waiting`.
    Building,
    /// The workload is ready for every future cell of the sweep.
    Ready(Arc<PreparedWorkload>),
}

struct PrepSlot<R> {
    state: SlotState,
    /// Cells parked until the in-flight build lands; the builder drains
    /// them into the injector (success and failure alike — after a
    /// failure one of them becomes the next builder).
    waiting: Vec<Item<R>>,
}

type SlotMap<R> = Mutex<HashMap<String, Arc<Mutex<PrepSlot<R>>>>>;

/// Runs `run` under the hard deadline: on a supervised thread whose
/// result is awaited for at most `hard` seconds, after which the
/// attempt is abandoned (the thread keeps running — a thread cannot be
/// safely killed — but its eventual result is discarded). With the
/// deadline off the job runs inline under `catch_unwind`.
///
/// The deadline covers only the job, not shared preparation:
/// preparation is a critical section other cells wait on, and
/// abandoning a thread inside it would wedge the whole sweep.
fn run_with_deadline<R: Send + 'static>(
    run: Box<dyn FnOnce() -> R + Send>,
    hard: f64,
) -> Result<R, String> {
    if hard <= 0.0 {
        return catch_unwind(AssertUnwindSafe(run)).map_err(panic_message);
    }
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new()
        .name("colt-cell-attempt".to_string())
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(run)));
        });
    if let Err(e) = spawned {
        return Err(format!("could not spawn watchdog attempt thread: {e}"));
    }
    match rx.recv_timeout(Duration::from_secs_f64(hard)) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(payload)) => Err(panic_message(payload)),
        Err(_) => Err(format!(
            "exceeded hard deadline {hard:.1}s (COLT_CELL_HARD_DEADLINE); \
             attempt abandoned"
        )),
    }
}

/// Exponential backoff before retry `attempt` (the attempt number that
/// just failed): 25 ms doubling per attempt, capped at 1 s. Pure
/// function of the attempt number — deterministic.
fn backoff_for(attempt: u32) -> Duration {
    Duration::from_millis((25u64 << (attempt.min(6) - 1)).min(1_000))
}

/// Deterministically perturbed requeue position for a retry: a hash of
/// (label, attempt) modulo the queue length, so a retried cell does
/// not land behind the exact co-scheduling that just failed it, yet
/// any two runs requeue identically.
fn requeue_position(label: &str, attempt: u32, queue_len: usize) -> usize {
    let h = crate::journal::crc32(label.as_bytes()) as usize + attempt as usize;
    h % (queue_len + 1)
}

fn encode_of<R: JournalPayload>(r: &R) -> String {
    r.encode()
}

fn decode_of<R: JournalPayload>(s: &str) -> Option<R> {
    R::decode(s)
}

/// Journal plumbing for one sweep: where to append finished cells and
/// how to (de)serialize the result payloads.
struct Hook<'a, R> {
    journal: &'a Journal,
    encode: fn(&R) -> String,
    decode: fn(&str) -> Option<R>,
}

struct EngineOpts<'a, R> {
    jobs: usize,
    retries: u32,
    hard: f64,
    hook: Option<Hook<'a, R>>,
    /// Whether finished cells push their [`CellMetric`]s into the
    /// process-global registry. Sweeps do (the BENCH reports drain it);
    /// service dispatches must not — a resident server batching forever
    /// would grow the registry without bound, and nothing drains it on
    /// that path.
    collect_metrics: bool,
}

impl<'a, R: JournalPayload> EngineOpts<'a, R> {
    fn from_sweep(opts: &SweepOptions<'a>) -> Self {
        EngineOpts {
            jobs: opts.jobs,
            retries: opts.retries,
            hard: opts.hard_deadline.unwrap_or_else(cell_hard_deadline),
            hook: opts.journal.map(|journal| Hook {
                journal,
                encode: encode_of::<R>,
                decode: decode_of::<R>,
            }),
            collect_metrics: true,
        }
    }
}

impl<R> EngineOpts<'_, R> {
    fn plain(jobs: usize) -> Self {
        EngineOpts {
            jobs,
            retries: 0,
            hard: cell_hard_deadline(),
            hook: None,
            collect_metrics: true,
        }
    }

    fn service(jobs: usize) -> Self {
        EngineOpts { collect_metrics: false, ..Self::plain(jobs) }
    }
}

/// The work a queue item performs per attempt.
enum Work<R> {
    Cell {
        scenario: Scenario,
        spec: BenchmarkSpec,
        job: Arc<dyn Fn(&PreparedWorkload) -> R + Send + Sync>,
    },
    Task {
        job: Arc<dyn Fn() -> R + Send + Sync>,
    },
}

struct Item<R> {
    idx: usize,
    attempt: u32,
    label: String,
    benchmark: String,
    scenario_name: String,
    refs: u64,
    expires_at: Option<Instant>,
    work: Work<R>,
}

/// Journals one finished cell (no-op without a journal). A journal
/// write failure is loud but non-fatal: the in-memory sweep result is
/// still correct, only resumability of this cell is lost.
fn journal_outcome<R>(
    hook: &Option<Hook<'_, R>>,
    item: &Item<R>,
    outcome: &CellOutcome<R>,
    metric: &CellMetric,
) {
    let Some(h) = hook else { return };
    let appended = match outcome {
        CellOutcome::Ok(r) => h.journal.append(
            &item.label,
            "ok",
            item.attempt as u64,
            "",
            &(h.encode)(r),
            metric.refs,
            metric.prep_seconds,
            metric.sim_seconds,
        ),
        CellOutcome::Failed { payload, .. } => h.journal.append(
            &item.label,
            "failed",
            item.attempt as u64,
            payload,
            "",
            metric.refs,
            metric.prep_seconds,
            metric.sim_seconds,
        ),
        CellOutcome::Quarantined { attempts, reason, .. } => h.journal.append(
            &item.label,
            "quarantined",
            u64::from(*attempts),
            reason,
            "",
            metric.refs,
            metric.prep_seconds,
            metric.sim_seconds,
        ),
    };
    // The append already retried with backoff (and accounted any
    // injected fault) inside `Journal::append`; only this cell's
    // durability is lost, never the sweep.
    if let Err(e) = appended {
        eprintln!(
            "warning: could not journal cell '{}' to {} after retries: {e} \
             (sweep continues; this cell will not be resumable)",
            item.label,
            h.journal.path().display()
        );
    }
}

/// Finds the next runnable item for worker `me`: own deque front, then
/// the shared injector, then a steal from the back of a sibling's deque
/// (scanned round-robin from `me + 1` so victims are spread evenly).
fn steal_work<R>(
    me: usize,
    deques: &[Mutex<VecDeque<Item<R>>>],
    injector: &Mutex<VecDeque<Item<R>>>,
) -> Option<Item<R>> {
    if let Some(item) = relock(&deques[me]).pop_front() {
        return Some(item);
    }
    if let Some(item) = relock(injector).pop_front() {
        return Some(item);
    }
    for k in 1..deques.len() {
        let victim = (me + k) % deques.len();
        if let Some(item) = relock(&deques[victim]).pop_back() {
            return Some(item);
        }
    }
    None
}

/// What came of trying to obtain a cell's shared preparation.
enum Acquired<R> {
    /// Another worker is mid-build; the item is parked on the slot and
    /// this worker should pick up other work.
    Parked,
    /// This worker built (or fetched) the workload.
    Ready {
        item: Item<R>,
        workload: Arc<PreparedWorkload>,
        /// Seconds this cell spent building or decoding the workload
        /// (0 when another cell, sweep, or invocation already paid).
        prep_seconds: f64,
    },
    /// The build failed (or panicked); the attempt is charged to this
    /// cell and the slot is left retryable.
    Failed { item: Item<R>, reason: String },
}

/// Obtains the shared workload for a cell without ever blocking the
/// worker: a ready slot is a free hit, an in-flight slot parks the
/// item, an empty slot makes this worker the builder (delegating to
/// the process-global [`snapshot_cache`]). Whichever way the build
/// ends, parked items are drained into the injector and sleeping
/// workers are woken.
fn acquire_prepared<R>(
    slots: &SlotMap<R>,
    injector: &Mutex<VecDeque<Item<R>>>,
    idle_cv: &Condvar,
    item: Item<R>,
) -> Acquired<R> {
    let Work::Cell { scenario, spec, .. } = &item.work else {
        unreachable!("acquire_prepared is only called for cells")
    };
    let key = snapshot_cache::prep_key(scenario, spec);
    let slot = {
        let mut map = relock(slots);
        Arc::clone(map.entry(key).or_insert_with(|| {
            Arc::new(Mutex::new(PrepSlot { state: SlotState::Empty, waiting: Vec::new() }))
        }))
    };
    {
        let mut st = relock(&slot);
        match &st.state {
            SlotState::Ready(w) => {
                return Acquired::Ready {
                    workload: Arc::clone(w),
                    prep_seconds: 0.0,
                    item,
                };
            }
            SlotState::Building => {
                st.waiting.push(item);
                return Acquired::Parked;
            }
            SlotState::Empty => st.state = SlotState::Building,
        }
    }
    // This worker is the builder; the slot lock is *not* held across
    // the build — arriving cells park instead of blocking.
    let Work::Cell { scenario, spec, .. } = &item.work else {
        unreachable!("cell items stay cells")
    };
    let built = snapshot_cache::get_or_prepare(scenario, spec);
    let mut st = relock(&slot);
    let (result, woken) = match built {
        Ok(p) => {
            st.state = SlotState::Ready(Arc::clone(&p.workload));
            let woken = std::mem::take(&mut st.waiting);
            (
                Acquired::Ready {
                    workload: p.workload,
                    prep_seconds: p.prep_seconds,
                    item,
                },
                woken,
            )
        }
        Err(reason) => {
            // Leave the slot retryable; a parked cell (or a retry of
            // this one) becomes the next builder.
            st.state = SlotState::Empty;
            let woken = std::mem::take(&mut st.waiting);
            (Acquired::Failed { item, reason }, woken)
        }
    };
    drop(st);
    if !woken.is_empty() {
        let mut inj = relock(injector);
        for it in woken {
            inj.push_back(it);
        }
    }
    idle_cv.notify_all();
    result
}

/// Concludes one attempt: requeues it (deterministic position in the
/// injector, after backoff) when retries remain, otherwise journals
/// the final outcome, bumps the completed count, wakes idle workers,
/// and reports the result.
#[allow(clippy::too_many_arguments)]
fn finish_attempt<R>(
    item: Item<R>,
    ran: Result<R, String>,
    metric: CellMetric,
    opts: &EngineOpts<'_, R>,
    injector: &Mutex<VecDeque<Item<R>>>,
    idle_cv: &Condvar,
    completed: &Mutex<usize>,
    soft: f64,
    tx: &mpsc::Sender<(usize, CellOutcome<R>, CellMetric)>,
) {
    warn_if_over_deadline(&item.label, metric.sim_seconds, soft);
    let outcome = match ran {
        Ok(result) => CellOutcome::Ok(result),
        Err(reason) => {
            if item.attempt <= opts.retries {
                eprintln!(
                    "warning: cell '{}' attempt {} failed ({reason}); \
                     retrying after backoff",
                    item.label, item.attempt
                );
                std::thread::sleep(backoff_for(item.attempt));
                {
                    let mut inj = relock(injector);
                    let pos = requeue_position(&item.label, item.attempt, inj.len());
                    inj.insert(pos, Item { attempt: item.attempt + 1, ..item });
                }
                idle_cv.notify_all();
                return;
            }
            if item.attempt > 1 {
                CellOutcome::Quarantined {
                    label: item.label.clone(),
                    attempts: item.attempt,
                    reason,
                }
            } else {
                CellOutcome::Failed { label: item.label.clone(), payload: reason }
            }
        }
    };
    journal_outcome(&opts.hook, &item, &outcome, &metric);
    *relock(completed) += 1;
    idle_cv.notify_all();
    let _ = tx.send((item.idx, outcome, metric));
}

/// The sweep engine: replays journaled cells, fans the rest out across
/// `jobs` workers with retry + quarantine supervision, and returns one
/// outcome per item in submission order.
fn engine<R: Send + 'static>(
    items: Vec<Item<R>>,
    opts: EngineOpts<'_, R>,
) -> Vec<CellOutcome<R>> {
    let n = items.len();
    let mut slots: Vec<Option<(CellOutcome<R>, CellMetric)>> =
        (0..n).map(|_| None).collect();

    // Replay pass: cells the journal already holds never re-run.
    let mut pending: VecDeque<Item<R>> = VecDeque::new();
    for item in items {
        if let Some(hook) = &opts.hook {
            if let Some(rep) = hook.journal.completed(&item.label) {
                match (hook.decode)(&rep.payload) {
                    Some(r) => {
                        let metric = CellMetric {
                            label: item.label.clone(),
                            benchmark: item.benchmark.clone(),
                            scenario: item.scenario_name.clone(),
                            refs: rep.refs,
                            prep_seconds: rep.prep_seconds,
                            sim_seconds: rep.sim_seconds,
                        };
                        slots[item.idx] = Some((CellOutcome::Ok(r), metric));
                        continue;
                    }
                    None => {
                        eprintln!(
                            "note: journal record for '{}' does not decode as this \
                             sweep's result type; re-running the cell",
                            item.label
                        );
                    }
                }
            }
        }
        pending.push_back(item);
    }

    let total = pending.len();
    let workers = opts.jobs.max(1).min(total.max(1));
    let soft = cell_soft_deadline();

    // Work-stealing state: items are dealt round-robin across per-worker
    // deques; a worker pops the front of its own deque, then the shared
    // injector (retries and un-parked cells land there), then steals
    // from the back of a sibling's deque. Termination is by completed
    // count — queue emptiness proves nothing while cells are parked on
    // building prep slots or sleeping through a retry backoff.
    let mut deques: Vec<Mutex<VecDeque<Item<R>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in pending.into_iter().enumerate() {
        deques[i % workers]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(item);
    }
    let deques: &[Mutex<VecDeque<Item<R>>>] = &deques;
    let injector: &Mutex<VecDeque<Item<R>>> = &Mutex::new(VecDeque::new());
    let prep_slots: &SlotMap<R> = &Mutex::new(HashMap::new());
    let completed: &Mutex<usize> = &Mutex::new(0);
    let idle_cv: &Condvar = &Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome<R>, CellMetric)>();
    let opts = &opts;

    std::thread::scope(|s| {
        for me in 0..workers {
            let tx = tx.clone();
            s.spawn(move || {
                loop {
                    let Some(item) = steal_work(me, deques, injector) else {
                        // Nothing runnable anywhere. Done — or waiting on
                        // an in-flight preparation or a retry backoff:
                        // park until the injector is fed (the timeout
                        // bounds any lost-wakeup race).
                        let done = relock(completed);
                        if *done >= total {
                            break;
                        }
                        drop(
                            idle_cv
                                .wait_timeout(done, Duration::from_millis(5))
                                .unwrap_or_else(PoisonError::into_inner),
                        );
                        continue;
                    };
                    let mut metric = CellMetric {
                        label: item.label.clone(),
                        benchmark: item.benchmark.clone(),
                        scenario: item.scenario_name.clone(),
                        refs: item.refs,
                        prep_seconds: 0.0,
                        sim_seconds: 0.0,
                    };
                    // A task whose requester's deadline already passed
                    // is dead on arrival: fail it finally (no retries —
                    // an expired task stays expired) without spending a
                    // worker slot on work nobody is waiting for.
                    if item.expires_at.is_some_and(|at| Instant::now() >= at) {
                        let outcome = CellOutcome::Failed {
                            label: item.label.clone(),
                            payload: EXPIRED_IN_QUEUE.to_string(),
                        };
                        journal_outcome(&opts.hook, &item, &outcome, &metric);
                        *relock(completed) += 1;
                        idle_cv.notify_all();
                        let _ = tx.send((item.idx, outcome, metric));
                        continue;
                    }
                    // One attempt: obtain the shared preparation (cells
                    // only) without blocking this worker, then run the
                    // job under the watchdog.
                    let (item, ran): (Item<R>, Result<R, String>) =
                        if matches!(item.work, Work::Cell { .. }) {
                            match acquire_prepared(prep_slots, injector, idle_cv, item) {
                                Acquired::Parked => continue,
                                Acquired::Failed { item, reason } => (item, Err(reason)),
                                Acquired::Ready { item, workload, prep_seconds } => {
                                    metric.prep_seconds = prep_seconds;
                                    let Work::Cell { job, .. } = &item.work else {
                                        unreachable!("cell items stay cells")
                                    };
                                    let job = Arc::clone(job);
                                    let start = Instant::now();
                                    let out = run_with_deadline(
                                        Box::new(move || job(&workload)),
                                        opts.hard,
                                    );
                                    metric.sim_seconds = start.elapsed().as_secs_f64();
                                    (item, out)
                                }
                            }
                        } else {
                            let Work::Task { job } = &item.work else {
                                unreachable!("non-cell items are tasks")
                            };
                            let job = Arc::clone(job);
                            let start = Instant::now();
                            let out =
                                run_with_deadline(Box::new(move || job()), opts.hard);
                            metric.sim_seconds = start.elapsed().as_secs_f64();
                            (item, out)
                        };
                    finish_attempt(
                        item, ran, metric, opts, injector, idle_cv, completed, soft, &tx,
                    );
                }
            });
        }
    });
    drop(tx);

    for (idx, outcome, metric) in rx {
        slots[idx] = Some((outcome, metric));
    }
    let mut results = Vec::with_capacity(n);
    if opts.collect_metrics {
        let mut metrics = relock(&METRICS);
        for slot in slots {
            let (outcome, metric) = slot.expect("every cell reports exactly once");
            results.push(outcome);
            metrics.push(metric);
        }
    } else {
        for slot in slots {
            let (outcome, _) = slot.expect("every cell reports exactly once");
            results.push(outcome);
        }
    }
    results
}

fn cell_items<R>(cells: Vec<SweepCell<R>>) -> Vec<Item<R>> {
    cells
        .into_iter()
        .enumerate()
        .map(|(idx, cell)| Item {
            idx,
            attempt: 1,
            label: cell.label,
            benchmark: cell.spec.name.to_string(),
            scenario_name: cell.scenario.name.clone(),
            refs: cell.refs,
            expires_at: None,
            work: Work::Cell {
                scenario: cell.scenario,
                spec: cell.spec,
                job: cell.job,
            },
        })
        .collect()
}

fn task_items<R>(tasks: Vec<SweepTask<R>>) -> Vec<Item<R>> {
    tasks
        .into_iter()
        .enumerate()
        .map(|(idx, task)| Item {
            idx,
            attempt: 1,
            label: task.label,
            benchmark: String::new(),
            scenario_name: String::new(),
            refs: task.refs,
            expires_at: task.expires_at,
            work: Work::Task { job: task.job },
        })
        .collect()
}

/// Runs every cell under the full supervision policy — retries with
/// backoff, hard-deadline watchdog, quarantine, and (when the policy
/// carries a journal) durable crash-safe progress with replay on
/// resume. One [`CellOutcome`] per cell, in submission order.
pub fn run_cells_sweep<R: Send + JournalPayload + 'static>(
    cells: Vec<SweepCell<R>>,
    opts: &SweepOptions<'_>,
) -> Vec<CellOutcome<R>> {
    engine(cell_items(cells), EngineOpts::from_sweep(opts))
}

/// Runs self-contained tasks under the full supervision policy; see
/// [`run_cells_sweep`].
pub fn run_tasks_sweep<R: Send + JournalPayload + 'static>(
    tasks: Vec<SweepTask<R>>,
    opts: &SweepOptions<'_>,
) -> Vec<CellOutcome<R>> {
    engine(task_items(tasks), EngineOpts::from_sweep(opts))
}

/// Runs every cell across at most `jobs` worker threads and returns one
/// [`CellOutcome`] per cell, in submission order. Zero retries, no
/// journal: a panicking cell (or a failing preparation) yields `Failed`
/// for that cell only; all other cells still complete.
pub fn run_cells_outcomes<R: Send + 'static>(
    cells: Vec<SweepCell<R>>,
    jobs: usize,
) -> Vec<CellOutcome<R>> {
    engine(cell_items(cells), EngineOpts::plain(jobs))
}

/// Runs every cell across at most `jobs` worker threads and returns the
/// results in submission order. A failing cell (e.g. workload OOM)
/// panics in the caller exactly as it would sequentially — use
/// [`run_cells_outcomes`] or [`run_cells_sweep`] for sweeps that must
/// survive cell failures.
pub fn run_cells<R: Send + 'static>(cells: Vec<SweepCell<R>>, jobs: usize) -> Vec<R> {
    expect_all(run_cells_outcomes(cells, jobs))
}

/// Runs self-contained tasks (no shared preparation) across at most
/// `jobs` worker threads, returning one [`CellOutcome`] per task in
/// submission order. Zero retries, no journal.
pub fn run_tasks_outcomes<R: Send + 'static>(
    tasks: Vec<SweepTask<R>>,
    jobs: usize,
) -> Vec<CellOutcome<R>> {
    engine(task_items(tasks), EngineOpts::plain(jobs))
}

/// Runs self-contained tasks (no shared preparation) across at most
/// `jobs` worker threads; results come back in submission order. A
/// failing task panics in the caller — use [`run_tasks_outcomes`] or
/// [`run_tasks_sweep`] for sweeps that must survive failures.
pub fn run_tasks<R: Send + 'static>(tasks: Vec<SweepTask<R>>, jobs: usize) -> Vec<R> {
    expect_all(run_tasks_outcomes(tasks, jobs))
}

/// [`run_tasks_outcomes`] for resident services (`repro serve`): same
/// work-stealing dispatch, panic isolation, and submission-order
/// results, but finished cells do *not* accumulate in the global
/// metrics registry — a server dispatching batches forever would grow
/// it without bound, and only sweep entry points have a matching
/// [`take_metrics`] drain.
pub fn run_tasks_service<R: Send + 'static>(
    tasks: Vec<SweepTask<R>>,
    jobs: usize,
) -> Vec<CellOutcome<R>> {
    engine(task_items(tasks), EngineOpts::service(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_tlb::config::TlbConfig;
    use colt_workloads::spec::benchmark;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn quick_cfg(tlb: TlbConfig) -> SimConfig {
        SimConfig { pattern_seed: 0x5EED, ..SimConfig::new(tlb).with_accesses(10_000) }
    }

    /// The metrics registry is process-global and the test harness runs
    /// tests concurrently, so tests that drain it must not interleave.
    static DRAIN: Mutex<()> = Mutex::new(());

    fn drain_lock() -> std::sync::MutexGuard<'static, ()> {
        DRAIN.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn service_entry_point_records_no_global_metrics() {
        let _g = drain_lock();
        let _ = take_metrics();
        let tasks: Vec<SweepTask<u32>> = (0..6)
            .map(|i| SweepTask::new(format!("svc-{i}"), 0, move || i * 2))
            .collect();
        let out = run_tasks_service(tasks, 3);
        assert_eq!(out.len(), 6);
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o.ok(), Some(i as u32 * 2));
        }
        assert!(
            take_metrics().is_empty(),
            "service dispatch must not leak into the sweep metrics registry"
        );
        // The sweep path still records (BENCH reports depend on it).
        let plain: Vec<SweepTask<u32>> =
            vec![SweepTask::new("plain".to_string(), 0, || 7)];
        let _ = run_tasks(plain, 1);
        assert_eq!(take_metrics().len(), 1);
    }

    #[test]
    fn expired_tasks_fail_without_running_and_fresh_ones_still_run() {
        let _g = drain_lock();
        let _ = take_metrics();
        let ran = Arc::new(AtomicU32::new(0));
        let past = Instant::now() - Duration::from_millis(1);
        let future = Instant::now() + Duration::from_secs(60);
        let mk = |label: &str, at: Instant, ran: &Arc<AtomicU32>| {
            let ran = Arc::clone(ran);
            SweepTask::new(label.to_string(), 0, move || {
                ran.fetch_add(1, Ordering::SeqCst);
                1u32
            })
            .with_expiry(at)
        };
        let tasks = vec![
            mk("expired", past, &ran),
            mk("fresh", future, &ran),
            SweepTask::new("no-deadline".to_string(), 0, {
                let ran = Arc::clone(&ran);
                move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    2u32
                }
            }),
        ];
        let out = run_tasks_service(tasks, 2);
        match &out[0] {
            CellOutcome::Failed { payload, .. } => {
                assert_eq!(payload, EXPIRED_IN_QUEUE, "expired task fails with the marker")
            }
            other => panic!("expired task must fail, got {other:?}"),
        }
        assert!(matches!(out[1], CellOutcome::Ok(1)));
        assert!(matches!(out[2], CellOutcome::Ok(2)));
        assert_eq!(ran.load(Ordering::SeqCst), 2, "the expired job never ran");
    }

    #[test]
    fn results_come_back_in_submission_order_at_any_width() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Gobmk").unwrap();
        let make_cells = || {
            vec![
                SweepCell::sim("base", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
                SweepCell::sim("sa", &scenario, &spec, quick_cfg(TlbConfig::colt_sa())),
                SweepCell::sim("fa", &scenario, &spec, quick_cfg(TlbConfig::colt_fa())),
                SweepCell::sim("all", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
            ]
        };
        let serial = run_cells(make_cells(), 1);
        let wide = run_cells(make_cells(), 8);
        let _ = take_metrics();
        assert_eq!(serial.len(), 4);
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.tlb.accesses, b.tlb.accesses);
            assert_eq!(a.tlb.l1_misses, b.tlb.l1_misses);
            assert_eq!(a.tlb.l2_misses, b.tlb.l2_misses);
            assert_eq!(a.walker.walks, b.walker.walks);
            assert_eq!(a.walk_cycles, b.walk_cycles);
        }
        // The four configs must actually differ (the cells were not
        // accidentally collapsed onto one job).
        assert!(serial[1].tlb.l2_misses < serial[0].tlb.l2_misses);
    }

    #[test]
    fn preparation_is_shared_within_one_sweep() {
        let _g = drain_lock();
        // A seed no other test uses: the process-global snapshot cache
        // must miss, so that exactly this sweep pays the preparation.
        let scenario = Scenario::default_linux().with_seed(0x5EED_5EED);
        let spec = benchmark("Povray").unwrap();
        let cells = vec![
            SweepCell::sim("prep-share/a", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
            SweepCell::sim("prep-share/b", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
        ];
        let _ = take_metrics();
        let results = run_cells(cells, 2);
        assert_eq!(results.len(), 2);
        // Concurrent driver tests append their own metrics; look only at
        // this sweep's labels.
        let metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("prep-share/"))
            .collect();
        assert_eq!(metrics.len(), 2);
        let prepped = metrics.iter().filter(|m| m.prep_seconds > 0.0).count();
        assert_eq!(prepped, 1, "exactly one cell builds the shared workload");
        assert_eq!(metrics[0].label, "prep-share/a");
        assert_eq!(metrics[1].label, "prep-share/b");
        assert!(metrics.iter().all(|m| m.refs == 11_000));
    }

    #[test]
    fn parked_cells_complete_when_the_shared_build_lands() {
        let _g = drain_lock();
        // Eight cells, one cold (scenario, benchmark) pair, four
        // workers: one worker builds while the others park their cells
        // on the slot and go steal; every cell must still complete with
        // exactly one build. A scheduler that loses parked items hangs
        // here; one that blocks workers merely serializes.
        let scenario = Scenario::default_linux().with_seed(0xBA1C_0DE5);
        let spec = benchmark("Povray").unwrap();
        let cells: Vec<SweepCell<u64>> = (0..8)
            .map(|i| {
                SweepCell::new(format!("park/c{i}"), &scenario, &spec, 0, move |w| {
                    w.contiguity().total_pages() + i
                })
            })
            .collect();
        let _ = take_metrics();
        let out = run_cells(cells, 4);
        let metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("park/"))
            .collect();
        assert_eq!(out.len(), 8);
        let base = out[0];
        assert_eq!(out, (0..8).map(|i| base + i).collect::<Vec<u64>>());
        assert_eq!(metrics.len(), 8);
        assert_eq!(
            metrics.iter().filter(|m| m.prep_seconds > 0.0).count(),
            1,
            "exactly one cell builds; the parked ones ride along free"
        );
    }

    #[test]
    fn tasks_run_and_keep_order() {
        let _g = drain_lock();
        let tasks: Vec<SweepTask<usize>> = (0..16)
            .map(|i| SweepTask::new(format!("t{i}"), 0, move || i * i))
            .collect();
        let out = run_tasks(tasks, 4);
        let _ = take_metrics();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn generic_cells_share_preparation_with_sim_cells() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Mcf").unwrap();
        let cells = vec![SweepCell::new("contig", &scenario, &spec, 0, |w| {
            w.contiguity().average_contiguity()
        })];
        let avg = run_cells(cells, 3);
        let _ = take_metrics();
        assert!(avg[0] >= 1.0);
    }

    #[test]
    fn a_panicking_cell_fails_alone_while_the_rest_complete() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Gobmk").unwrap();
        let mut cells: Vec<SweepCell<u64>> = (0..6)
            .map(|i| {
                SweepCell::new(format!("iso/ok{i}"), &scenario, &spec, 0, move |w| {
                    w.contiguity().total_pages() + i
                })
            })
            .collect();
        cells.insert(
            3,
            SweepCell::new("iso/boom", &scenario, &spec, 0, |_| -> u64 {
                panic!("deliberate cell failure");
            }),
        );
        let outcomes = run_cells_outcomes(cells, 4);
        let _ = take_metrics();
        assert_eq!(outcomes.len(), 7);
        let failed: Vec<&CellOutcome<u64>> =
            outcomes.iter().filter(|o| o.is_failed()).collect();
        assert_eq!(failed.len(), 1, "exactly one cell fails");
        match failed[0] {
            CellOutcome::Failed { label, payload } => {
                assert_eq!(label, "iso/boom");
                assert!(payload.contains("deliberate cell failure"));
            }
            _ => panic!("zero-retry failure must be Failed, not Quarantined"),
        }
        // Every other cell (including those queued after the panic on
        // the same workers) completed and kept submission order.
        let oks: Vec<u64> =
            outcomes.into_iter().filter_map(CellOutcome::ok).collect();
        assert_eq!(oks.len(), 6);
        let base = oks[0];
        assert_eq!(oks, (0..6).map(|i| base + i).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_task_fails_alone_while_the_rest_complete() {
        let _g = drain_lock();
        let tasks: Vec<SweepTask<usize>> = (0..8)
            .map(|i| {
                SweepTask::new(format!("tiso{i}"), 0, move || {
                    if i == 5 {
                        panic!("task {i} exploded");
                    }
                    i * 10
                })
            })
            .collect();
        let outcomes = run_tasks_outcomes(tasks, 3);
        let _ = take_metrics();
        assert_eq!(outcomes.iter().filter(|o| o.is_failed()).count(), 1);
        match &outcomes[5] {
            CellOutcome::Failed { label, payload } => {
                assert_eq!(label, "tiso5");
                assert!(payload.contains("task 5 exploded"));
            }
            _ => panic!("task 5 should have failed"),
        }
        for (i, o) in outcomes.iter().enumerate() {
            if i != 5 {
                assert!(matches!(o, CellOutcome::Ok(v) if *v == i * 10));
            }
        }
    }

    #[test]
    fn failing_preparation_becomes_a_failed_outcome_not_a_panic() {
        let _g = drain_lock();
        // A scenario with fewer frames than memhog wants to pin cannot
        // prepare; the cell must fail gracefully, and a healthy sibling
        // cell in the same sweep must still run.
        let broken = Scenario { nr_frames: 64, ..Scenario::default_linux() };
        let healthy = Scenario::default_linux();
        let spec = benchmark("Bzip2").unwrap();
        let cells = vec![
            SweepCell::new("prep-fail/broken", &broken, &spec, 0, |w| {
                w.contiguity().total_pages()
            }),
            SweepCell::new("prep-fail/healthy", &healthy, &spec, 0, |w| {
                w.contiguity().total_pages()
            }),
        ];
        let outcomes = run_cells_outcomes(cells, 2);
        let _ = take_metrics();
        assert!(outcomes[0].is_failed(), "tiny scenario must fail to prepare");
        match &outcomes[0] {
            CellOutcome::Failed { label, .. } => assert_eq!(label, "prep-fail/broken"),
            _ => panic!("expected a Failed outcome"),
        }
        assert!(matches!(&outcomes[1], CellOutcome::Ok(pages) if *pages > 0));
    }

    #[test]
    fn a_flaky_task_recovers_on_retry() {
        let _g = drain_lock();
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let tasks = vec![SweepTask::new("flaky/one", 0, move || {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure");
            }
            77u64
        })];
        let opts =
            SweepOptions { retries: 1, ..SweepOptions::jobs_only(2) };
        let outcomes = run_tasks_sweep(tasks, &opts);
        let _ = take_metrics();
        assert!(matches!(outcomes[0], CellOutcome::Ok(77)));
        assert_eq!(tries.load(Ordering::SeqCst), 2, "first try + one retry");
    }

    #[test]
    fn exhausted_retries_quarantine_with_attempt_count() {
        let _g = drain_lock();
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let tasks = vec![
            SweepTask::new("quar/dead", 0, move || -> u64 {
                t.fetch_add(1, Ordering::SeqCst);
                panic!("always fails");
            }),
            SweepTask::new("quar/alive", 0, || 5u64),
        ];
        let opts = SweepOptions { retries: 2, ..SweepOptions::jobs_only(2) };
        let outcomes = run_tasks_sweep(tasks, &opts);
        let _ = take_metrics();
        match &outcomes[0] {
            CellOutcome::Quarantined { label, attempts, reason } => {
                assert_eq!(label, "quar/dead");
                assert_eq!(*attempts, 3, "first try + two retries");
                assert!(reason.contains("always fails"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert!(matches!(outcomes[1], CellOutcome::Ok(5)));
    }

    #[test]
    fn hard_deadline_quarantines_a_hung_task() {
        let _g = drain_lock();
        let tasks = vec![
            SweepTask::new("wd/hung", 0, || {
                std::thread::sleep(Duration::from_secs(30));
                1u64
            }),
            SweepTask::new("wd/fast", 0, || 2u64),
        ];
        let opts = SweepOptions {
            retries: 1,
            hard_deadline: Some(0.05),
            ..SweepOptions::jobs_only(2)
        };
        let start = Instant::now();
        let outcomes = run_tasks_sweep(tasks, &opts);
        let _ = take_metrics();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the watchdog must reclaim the sweep long before the hung cell ends"
        );
        match &outcomes[0] {
            CellOutcome::Quarantined { attempts, reason, .. } => {
                assert_eq!(*attempts, 2);
                assert!(reason.contains("hard deadline"), "{reason}");
            }
            other => panic!("expected deadline quarantine, got {other:?}"),
        }
        assert!(matches!(outcomes[1], CellOutcome::Ok(2)));
    }

    #[test]
    fn journaled_sweep_replays_completed_cells_without_rerunning() {
        let _g = drain_lock();
        let dir = std::env::temp_dir()
            .join(format!("colt-runner-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let runs = Arc::new(AtomicU32::new(0));
        let make_tasks = |runs: &Arc<AtomicU32>| {
            (0..4u64)
                .map(|i| {
                    let r = Arc::clone(runs);
                    SweepTask::new(format!("jrnl/t{i}"), 0, move || {
                        r.fetch_add(1, Ordering::SeqCst);
                        i * 100
                    })
                })
                .collect::<Vec<_>>()
        };

        let journal =
            Journal::open(&dir, "jrnl", "cafe0001".to_string(), false).unwrap();
        let opts = SweepOptions {
            journal: Some(&journal),
            ..SweepOptions::jobs_only(2)
        };
        let first = expect_all(run_tasks_sweep(make_tasks(&runs), &opts));
        let _ = take_metrics();
        assert_eq!(first, vec![0, 100, 200, 300]);
        assert_eq!(runs.load(Ordering::SeqCst), 4);
        assert_eq!(journal.appended(), 4);

        // Resume: every cell replays, nothing executes, results and
        // submission order are identical.
        let journal =
            Journal::open(&dir, "jrnl", "cafe0001".to_string(), true).unwrap();
        assert_eq!(journal.open_report().replayed, 4);
        let opts = SweepOptions {
            journal: Some(&journal),
            ..SweepOptions::jobs_only(2)
        };
        let second = expect_all(run_tasks_sweep(make_tasks(&runs), &opts));
        let _ = take_metrics();
        assert_eq!(second, first);
        assert_eq!(runs.load(Ordering::SeqCst), 4, "no cell re-ran");
        assert_eq!(journal.appended(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_sweep_hits_the_cache_and_reproduces_results_byte_for_byte() {
        let _g = drain_lock();
        // A seed no other test uses, so the first sweep is the one that
        // populates the process-global cache.
        let scenario = Scenario::default_linux().with_seed(0x0CAC_4E01);
        let spec = benchmark("Gobmk").unwrap();
        let make_cells = || {
            vec![
                SweepCell::sim("warmcache/base", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
                SweepCell::sim("warmcache/all", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
            ]
        };
        let _ = take_metrics();
        let cold = run_cells(make_cells(), 2);
        let cold_metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("warmcache/"))
            .collect();
        assert_eq!(
            cold_metrics.iter().filter(|m| m.prep_seconds > 0.0).count(),
            1,
            "the cold sweep builds the pair exactly once"
        );

        // Same sweep again: served entirely from the in-memory snapshot
        // cache (prepare-then-clone), and byte-identical to preparing
        // from scratch (prepare-twice).
        let warm = run_cells(make_cells(), 2);
        let warm_metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("warmcache/"))
            .collect();
        assert!(
            warm_metrics.iter().all(|m| m.prep_seconds == 0.0),
            "a warm sweep pays no preparation at all: {warm_metrics:?}"
        );
        let cold_bytes: Vec<String> = cold.iter().map(JournalPayload::encode).collect();
        let warm_bytes: Vec<String> = warm.iter().map(JournalPayload::encode).collect();
        assert_eq!(cold_bytes, warm_bytes, "cache hits must not change any result");
    }

    #[test]
    fn resume_with_a_warm_cache_stays_byte_identical() {
        let _g = drain_lock();
        let dir = std::env::temp_dir()
            .join(format!("colt-runner-warm-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let scenario = Scenario::default_linux().with_seed(0x00D1_5C01);
        let spec = benchmark("Bzip2").unwrap();
        let make_cells = || {
            vec![
                SweepCell::sim("resume-warm/sa", &scenario, &spec, quick_cfg(TlbConfig::colt_sa())),
                SweepCell::sim("resume-warm/fa", &scenario, &spec, quick_cfg(TlbConfig::colt_fa())),
            ]
        };

        // First invocation: journaled to completion (the cache is warm
        // from here on, as after a killed run that finished some cells).
        let journal = Journal::open(&dir, "warm", "beef0002".to_string(), false).unwrap();
        let opts = SweepOptions { journal: Some(&journal), ..SweepOptions::jobs_only(2) };
        let first = expect_all(run_cells_sweep(make_cells(), &opts));
        let _ = take_metrics();
        assert_eq!(journal.appended(), 2);

        // Resume against the same journal with the warm cache: every
        // cell replays from the journal, nothing re-prepares or
        // re-simulates, and the payloads are byte-identical.
        let journal = Journal::open(&dir, "warm", "beef0002".to_string(), true).unwrap();
        assert_eq!(journal.open_report().replayed, 2);
        let opts = SweepOptions { journal: Some(&journal), ..SweepOptions::jobs_only(2) };
        let second = expect_all(run_cells_sweep(make_cells(), &opts));
        let _ = take_metrics();
        assert_eq!(journal.appended(), 0, "replayed cells are not re-journaled");
        let first_bytes: Vec<String> = first.iter().map(JournalPayload::encode).collect();
        let second_bytes: Vec<String> = second.iter().map(JournalPayload::encode).collect();
        assert_eq!(first_bytes, second_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
