//! Parallel sweep runner: fans independent (benchmark × scenario ×
//! TLB-config) simulation cells out across a scoped-thread worker pool.
//!
//! Every experiment driver is a sweep over cells that share nothing but
//! a prepared workload, so the runner provides exactly two guarantees:
//!
//! 1. **Determinism** — results come back in submission order, and each
//!    cell's simulation consumes only its own [`SimConfig`]-seeded RNG
//!    streams, so the rendered tables are byte-identical regardless of
//!    `jobs`.
//! 2. **Shared preparation** — cells that name the same (scenario,
//!    benchmark) pair share one [`PreparedWorkload`], built once by
//!    whichever worker gets there first and handed out as an `Arc`, so
//!    e.g. Figure 18's four TLB modes pay for one aging pass, not four.
//!
//! Implementation is std-only (`std::thread::scope`, channels, locks):
//! the build must work offline, so no rayon or crates.io dependency.

use crate::sim::{self, SimConfig, SimResult};
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::BenchmarkSpec;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One unit of parallel work: a job run against a prepared workload.
pub struct SweepCell<R> {
    label: String,
    scenario: Scenario,
    spec: BenchmarkSpec,
    /// Memory references the job will simulate (0 for analysis-only
    /// cells such as contiguity scans) — feeds the throughput report.
    refs: u64,
    job: Box<dyn FnOnce(&PreparedWorkload) -> R + Send>,
}

impl<R> SweepCell<R> {
    /// A cell running an arbitrary job against the prepared workload.
    pub fn new(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        refs: u64,
        job: impl FnOnce(&PreparedWorkload) -> R + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            scenario: scenario.clone(),
            spec: spec.clone(),
            refs,
            job: Box::new(job),
        }
    }
}

impl SweepCell<SimResult> {
    /// The common case: simulate the workload under one TLB config.
    pub fn sim(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        cfg: SimConfig,
    ) -> Self {
        let refs = cfg.warmup + cfg.accesses;
        Self::new(label, scenario, spec, refs, move |w| sim::run(w, &cfg))
    }
}

/// One unit of parallel work that owns its whole job (no shared
/// preparation) — for drivers like `multiprog` whose preparation is
/// itself per-cell.
pub struct SweepTask<R> {
    label: String,
    refs: u64,
    job: Box<dyn FnOnce() -> R + Send>,
}

impl<R> SweepTask<R> {
    /// Creates a self-contained task.
    pub fn new(
        label: impl Into<String>,
        refs: u64,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Self {
        Self { label: label.into(), refs, job: Box::new(job) }
    }
}

/// Timing record for one completed cell, for the throughput report.
#[derive(Clone, Debug)]
pub struct CellMetric {
    /// Cell label ("fig18/Mcf/CoLT-All").
    pub label: String,
    /// Benchmark name ("" for self-contained tasks).
    pub benchmark: String,
    /// Scenario name ("" for self-contained tasks).
    pub scenario: String,
    /// Memory references simulated (0 for analysis-only cells).
    pub refs: u64,
    /// Seconds this cell spent building the shared workload (0 when it
    /// reused another cell's preparation).
    pub prep_seconds: f64,
    /// Seconds the job itself ran.
    pub sim_seconds: f64,
}

static METRICS: Mutex<Vec<CellMetric>> = Mutex::new(Vec::new());

/// Drains the metrics accumulated by every `run_cells`/`run_tasks` call
/// since the last drain, in cell-submission order.
pub fn take_metrics() -> Vec<CellMetric> {
    std::mem::take(&mut METRICS.lock().expect("metrics lock"))
}

type PrepSlot = Arc<OnceLock<Arc<PreparedWorkload>>>;
type PrepCache = Mutex<HashMap<String, PrepSlot>>;

/// Builds (or fetches) the shared workload for one (scenario, spec)
/// pair. Returns the seconds spent preparing — 0.0 on a cache hit.
fn prepared(cache: &PrepCache, scenario: &Scenario, spec: &BenchmarkSpec) -> (Arc<PreparedWorkload>, f64) {
    let key = format!("{scenario:?}\u{1}{spec:?}");
    let slot = {
        let mut map = cache.lock().expect("prep cache lock");
        map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
    };
    let mut prep_seconds = 0.0;
    let workload = slot
        .get_or_init(|| {
            let start = Instant::now();
            let w = scenario.prepare(spec).unwrap_or_else(|e| {
                panic!("scenario '{}' failed for {}: {e}", scenario.name, spec.name)
            });
            prep_seconds = start.elapsed().as_secs_f64();
            Arc::new(w)
        })
        .clone();
    (workload, prep_seconds)
}

/// Runs every cell across at most `jobs` worker threads and returns the
/// results in submission order. A panicking cell (e.g. workload OOM)
/// propagates out of the scope exactly as it would sequentially.
pub fn run_cells<R: Send>(cells: Vec<SweepCell<R>>, jobs: usize) -> Vec<R> {
    let n = cells.len();
    let workers = jobs.max(1).min(n.max(1));
    let queue: Mutex<VecDeque<(usize, SweepCell<R>)>> =
        Mutex::new(cells.into_iter().enumerate().collect());
    let cache: PrepCache = Mutex::new(HashMap::new());
    let (tx, rx) = mpsc::channel::<(usize, R, CellMetric)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let cache = &cache;
            s.spawn(move || {
                loop {
                    let Some((idx, cell)) = queue.lock().expect("queue lock").pop_front()
                    else {
                        break;
                    };
                    let (workload, prep_seconds) =
                        prepared(cache, &cell.scenario, &cell.spec);
                    let start = Instant::now();
                    let result = (cell.job)(&workload);
                    let metric = CellMetric {
                        label: cell.label,
                        benchmark: cell.spec.name.to_string(),
                        scenario: cell.scenario.name.clone(),
                        refs: cell.refs,
                        prep_seconds,
                        sim_seconds: start.elapsed().as_secs_f64(),
                    };
                    if tx.send((idx, result, metric)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    collect(rx, n)
}

/// Runs self-contained tasks (no shared preparation) across at most
/// `jobs` worker threads; results come back in submission order.
pub fn run_tasks<R: Send>(tasks: Vec<SweepTask<R>>, jobs: usize) -> Vec<R> {
    let n = tasks.len();
    let workers = jobs.max(1).min(n.max(1));
    let queue: Mutex<VecDeque<(usize, SweepTask<R>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, R, CellMetric)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || {
                loop {
                    let Some((idx, task)) = queue.lock().expect("queue lock").pop_front()
                    else {
                        break;
                    };
                    let start = Instant::now();
                    let result = (task.job)();
                    let metric = CellMetric {
                        label: task.label,
                        benchmark: String::new(),
                        scenario: String::new(),
                        refs: task.refs,
                        prep_seconds: 0.0,
                        sim_seconds: start.elapsed().as_secs_f64(),
                    };
                    if tx.send((idx, result, metric)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    collect(rx, n)
}

/// Reorders completion-order results into submission order and appends
/// the metrics (also in submission order) to the global registry.
fn collect<R>(rx: mpsc::Receiver<(usize, R, CellMetric)>, n: usize) -> Vec<R> {
    let mut slots: Vec<Option<(R, CellMetric)>> = (0..n).map(|_| None).collect();
    for (idx, result, metric) in rx {
        slots[idx] = Some((result, metric));
    }
    let mut results = Vec::with_capacity(n);
    let mut metrics = METRICS.lock().expect("metrics lock");
    for slot in slots {
        let (result, metric) = slot.expect("every cell reports exactly once");
        results.push(result);
        metrics.push(metric);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_tlb::config::TlbConfig;
    use colt_workloads::spec::benchmark;

    fn quick_cfg(tlb: TlbConfig) -> SimConfig {
        SimConfig { pattern_seed: 0x5EED, ..SimConfig::new(tlb).with_accesses(10_000) }
    }

    /// The metrics registry is process-global and the test harness runs
    /// tests concurrently, so tests that drain it must not interleave.
    static DRAIN: Mutex<()> = Mutex::new(());

    fn drain_lock() -> std::sync::MutexGuard<'static, ()> {
        DRAIN.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn results_come_back_in_submission_order_at_any_width() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Gobmk").unwrap();
        let make_cells = || {
            vec![
                SweepCell::sim("base", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
                SweepCell::sim("sa", &scenario, &spec, quick_cfg(TlbConfig::colt_sa())),
                SweepCell::sim("fa", &scenario, &spec, quick_cfg(TlbConfig::colt_fa())),
                SweepCell::sim("all", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
            ]
        };
        let serial = run_cells(make_cells(), 1);
        let wide = run_cells(make_cells(), 8);
        let _ = take_metrics();
        assert_eq!(serial.len(), 4);
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.tlb.accesses, b.tlb.accesses);
            assert_eq!(a.tlb.l1_misses, b.tlb.l1_misses);
            assert_eq!(a.tlb.l2_misses, b.tlb.l2_misses);
            assert_eq!(a.walker.walks, b.walker.walks);
            assert_eq!(a.walk_cycles, b.walk_cycles);
        }
        // The four configs must actually differ (the cells were not
        // accidentally collapsed onto one job).
        assert!(serial[1].tlb.l2_misses < serial[0].tlb.l2_misses);
    }

    #[test]
    fn preparation_is_shared_within_one_sweep() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Povray").unwrap();
        let cells = vec![
            SweepCell::sim("prep-share/a", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
            SweepCell::sim("prep-share/b", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
        ];
        let _ = take_metrics();
        let results = run_cells(cells, 2);
        assert_eq!(results.len(), 2);
        // Concurrent driver tests append their own metrics; look only at
        // this sweep's labels.
        let metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("prep-share/"))
            .collect();
        assert_eq!(metrics.len(), 2);
        let prepped = metrics.iter().filter(|m| m.prep_seconds > 0.0).count();
        assert_eq!(prepped, 1, "exactly one cell builds the shared workload");
        assert_eq!(metrics[0].label, "prep-share/a");
        assert_eq!(metrics[1].label, "prep-share/b");
        assert!(metrics.iter().all(|m| m.refs == 11_000));
    }

    #[test]
    fn tasks_run_and_keep_order() {
        let _g = drain_lock();
        let tasks: Vec<SweepTask<usize>> = (0..16)
            .map(|i| SweepTask::new(format!("t{i}"), 0, move || i * i))
            .collect();
        let out = run_tasks(tasks, 4);
        let _ = take_metrics();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn generic_cells_share_preparation_with_sim_cells() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Mcf").unwrap();
        let cells = vec![SweepCell::new("contig", &scenario, &spec, 0, |w| {
            w.contiguity().average_contiguity()
        })];
        let avg = run_cells(cells, 3);
        let _ = take_metrics();
        assert!(avg[0] >= 1.0);
    }
}
