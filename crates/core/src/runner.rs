//! Parallel sweep runner: fans independent (benchmark × scenario ×
//! TLB-config) simulation cells out across a scoped-thread worker pool.
//!
//! Every experiment driver is a sweep over cells that share nothing but
//! a prepared workload, so the runner provides exactly three guarantees:
//!
//! 1. **Determinism** — results come back in submission order, and each
//!    cell's simulation consumes only its own [`SimConfig`]-seeded RNG
//!    streams, so the rendered tables are byte-identical regardless of
//!    `jobs`.
//! 2. **Shared preparation** — cells that name the same (scenario,
//!    benchmark) pair share one [`PreparedWorkload`], built once by
//!    whichever worker gets there first and handed out as an `Arc`, so
//!    e.g. Figure 18's four TLB modes pay for one aging pass, not four.
//! 3. **Panic isolation** — via [`run_cells_outcomes`], a cell that
//!    panics (or whose preparation fails) becomes a
//!    [`CellOutcome::Failed`] while every other cell still completes;
//!    the locks it held are recovered rather than left poisoned. The
//!    legacy [`run_cells`]/[`run_tasks`] entry points keep the old
//!    fail-fast contract by re-panicking on the first failure.
//!
//! Implementation is std-only (`std::thread::scope`, channels, locks):
//! the build must work offline, so no rayon or crates.io dependency.

use crate::sim::{self, SimConfig, SimResult};
use colt_workloads::scenario::{PreparedWorkload, Scenario};
use colt_workloads::spec::BenchmarkSpec;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One unit of parallel work: a job run against a prepared workload.
pub struct SweepCell<R> {
    label: String,
    scenario: Scenario,
    spec: BenchmarkSpec,
    /// Memory references the job will simulate (0 for analysis-only
    /// cells such as contiguity scans) — feeds the throughput report.
    refs: u64,
    job: Box<dyn FnOnce(&PreparedWorkload) -> R + Send>,
}

impl<R> SweepCell<R> {
    /// A cell running an arbitrary job against the prepared workload.
    pub fn new(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        refs: u64,
        job: impl FnOnce(&PreparedWorkload) -> R + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            scenario: scenario.clone(),
            spec: spec.clone(),
            refs,
            job: Box::new(job),
        }
    }
}

impl SweepCell<SimResult> {
    /// The common case: simulate the workload under one TLB config.
    pub fn sim(
        label: impl Into<String>,
        scenario: &Scenario,
        spec: &BenchmarkSpec,
        cfg: SimConfig,
    ) -> Self {
        let refs = cfg.warmup + cfg.accesses;
        Self::new(label, scenario, spec, refs, move |w| sim::run(w, &cfg))
    }
}

/// One unit of parallel work that owns its whole job (no shared
/// preparation) — for drivers like `multiprog` whose preparation is
/// itself per-cell.
pub struct SweepTask<R> {
    label: String,
    refs: u64,
    job: Box<dyn FnOnce() -> R + Send>,
}

impl<R> SweepTask<R> {
    /// Creates a self-contained task.
    pub fn new(
        label: impl Into<String>,
        refs: u64,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Self {
        Self { label: label.into(), refs, job: Box::new(job) }
    }
}

/// What became of one sweep cell: its result, or a description of why it
/// died while the rest of the sweep carried on.
#[derive(Debug)]
pub enum CellOutcome<R> {
    /// The cell ran to completion.
    Ok(R),
    /// The cell's preparation failed or its job panicked; `payload` is
    /// the panic message (or preparation error) for the failure report.
    Failed {
        /// Label of the failed cell ("fig18/Mcf/CoLT-All").
        label: String,
        /// Human-readable failure cause.
        payload: String,
    },
}

impl<R> CellOutcome<R> {
    /// The success value, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            CellOutcome::Ok(r) => Some(r),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// True when the cell failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// Unwraps the success value, re-panicking with the recorded payload
    /// — the fail-fast behaviour of the legacy entry points.
    fn unwrap_or_panic(self) -> R {
        match self {
            CellOutcome::Ok(r) => r,
            CellOutcome::Failed { label, payload } => {
                panic!("sweep cell '{label}' failed: {payload}")
            }
        }
    }
}

/// Timing record for one completed cell, for the throughput report.
#[derive(Clone, Debug)]
pub struct CellMetric {
    /// Cell label ("fig18/Mcf/CoLT-All").
    pub label: String,
    /// Benchmark name ("" for self-contained tasks).
    pub benchmark: String,
    /// Scenario name ("" for self-contained tasks).
    pub scenario: String,
    /// Memory references simulated (0 for analysis-only cells).
    pub refs: u64,
    /// Seconds this cell spent building the shared workload (0 when it
    /// reused another cell's preparation).
    pub prep_seconds: f64,
    /// Seconds the job itself ran.
    pub sim_seconds: f64,
}

static METRICS: Mutex<Vec<CellMetric>> = Mutex::new(Vec::new());

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Every runner structure is either append-only (metrics), a work queue
/// whose items are consumed whole, or a prep slot that a failed builder
/// leaves `None` (retryable) — so the data is consistent even after a
/// mid-critical-section panic and poisoning carries no information.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a `catch_unwind` payload as the human-readable panic message.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Soft wall-clock budget for one cell, in seconds. Cells that run
/// longer only earn a stderr warning — killing a thread mid-simulation
/// would corrupt nothing but help nobody — but the warning makes hung
/// cells visible in otherwise-silent long sweeps. Override with
/// `COLT_CELL_SOFT_DEADLINE=<seconds>` (0 disables).
fn cell_soft_deadline() -> f64 {
    std::env::var("COLT_CELL_SOFT_DEADLINE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(120.0)
}

fn warn_if_over_deadline(label: &str, seconds: f64, deadline: f64) {
    if deadline > 0.0 && seconds > deadline {
        eprintln!(
            "warning: cell '{label}' ran {seconds:.1}s (soft deadline {deadline:.0}s)"
        );
    }
}

/// Drains the metrics accumulated by every `run_cells`/`run_tasks` call
/// since the last drain, in cell-submission order.
pub fn take_metrics() -> Vec<CellMetric> {
    std::mem::take(&mut *relock(&METRICS))
}

/// A shared preparation slot. `None` until some worker succeeds; a
/// failed build leaves it `None` so a later cell may retry (e.g. after
/// a transient workload error), unlike a `OnceLock` which would wedge.
type PrepSlot = Arc<Mutex<Option<Arc<PreparedWorkload>>>>;
type PrepCache = Mutex<HashMap<String, PrepSlot>>;

/// Builds (or fetches) the shared workload for one (scenario, spec)
/// pair. Returns the seconds spent preparing — 0.0 on a cache hit — or
/// an error description if preparation failed (or panicked).
fn prepared(
    cache: &PrepCache,
    scenario: &Scenario,
    spec: &BenchmarkSpec,
) -> Result<(Arc<PreparedWorkload>, f64), String> {
    let key = format!("{scenario:?}\u{1}{spec:?}");
    let slot = {
        let mut map = relock(cache);
        map.entry(key).or_insert_with(|| Arc::new(Mutex::new(None))).clone()
    };
    // Hold the slot lock across the build so concurrent cells wait for
    // one preparation instead of duplicating it.
    let mut guard = relock(&slot);
    if let Some(w) = guard.as_ref() {
        return Ok((Arc::clone(w), 0.0));
    }
    let start = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| scenario.prepare(spec)));
    let workload = match built {
        Ok(Ok(w)) => Arc::new(w),
        Ok(Err(e)) => {
            return Err(format!(
                "scenario '{}' failed for {}: {e}",
                scenario.name, spec.name
            ));
        }
        Err(payload) => {
            return Err(format!(
                "scenario '{}' panicked for {}: {}",
                scenario.name,
                spec.name,
                panic_message(payload)
            ));
        }
    };
    *guard = Some(Arc::clone(&workload));
    let prep_seconds = start.elapsed().as_secs_f64();
    Ok((workload, prep_seconds))
}

/// Runs every cell across at most `jobs` worker threads and returns one
/// [`CellOutcome`] per cell, in submission order. A panicking cell (or
/// a failing preparation) yields `Failed` for that cell only; all other
/// cells — including later ones popped by the same worker — complete.
pub fn run_cells_outcomes<R: Send>(
    cells: Vec<SweepCell<R>>,
    jobs: usize,
) -> Vec<CellOutcome<R>> {
    let n = cells.len();
    let workers = jobs.max(1).min(n.max(1));
    let deadline = cell_soft_deadline();
    let queue: Mutex<VecDeque<(usize, SweepCell<R>)>> =
        Mutex::new(cells.into_iter().enumerate().collect());
    let cache: PrepCache = Mutex::new(HashMap::new());
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome<R>, CellMetric)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let cache = &cache;
            s.spawn(move || {
                loop {
                    let Some((idx, cell)) = relock(queue).pop_front() else {
                        break;
                    };
                    let mut metric = CellMetric {
                        label: cell.label.clone(),
                        benchmark: cell.spec.name.to_string(),
                        scenario: cell.scenario.name.clone(),
                        refs: cell.refs,
                        prep_seconds: 0.0,
                        sim_seconds: 0.0,
                    };
                    let outcome = match prepared(cache, &cell.scenario, &cell.spec) {
                        Err(payload) => {
                            CellOutcome::Failed { label: cell.label, payload }
                        }
                        Ok((workload, prep_seconds)) => {
                            metric.prep_seconds = prep_seconds;
                            let job = cell.job;
                            let start = Instant::now();
                            let ran =
                                catch_unwind(AssertUnwindSafe(|| job(&workload)));
                            metric.sim_seconds = start.elapsed().as_secs_f64();
                            warn_if_over_deadline(
                                &metric.label,
                                metric.sim_seconds,
                                deadline,
                            );
                            match ran {
                                Ok(result) => CellOutcome::Ok(result),
                                Err(payload) => CellOutcome::Failed {
                                    label: cell.label,
                                    payload: panic_message(payload),
                                },
                            }
                        }
                    };
                    if tx.send((idx, outcome, metric)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    collect(rx, n)
}

/// Runs every cell across at most `jobs` worker threads and returns the
/// results in submission order. A failing cell (e.g. workload OOM)
/// panics in the caller exactly as it would sequentially — use
/// [`run_cells_outcomes`] for sweeps that must survive cell failures.
pub fn run_cells<R: Send>(cells: Vec<SweepCell<R>>, jobs: usize) -> Vec<R> {
    run_cells_outcomes(cells, jobs)
        .into_iter()
        .map(CellOutcome::unwrap_or_panic)
        .collect()
}

/// Runs self-contained tasks (no shared preparation) across at most
/// `jobs` worker threads, returning one [`CellOutcome`] per task in
/// submission order. A panicking task fails alone; the rest complete.
pub fn run_tasks_outcomes<R: Send>(
    tasks: Vec<SweepTask<R>>,
    jobs: usize,
) -> Vec<CellOutcome<R>> {
    let n = tasks.len();
    let workers = jobs.max(1).min(n.max(1));
    let deadline = cell_soft_deadline();
    let queue: Mutex<VecDeque<(usize, SweepTask<R>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, CellOutcome<R>, CellMetric)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || {
                loop {
                    let Some((idx, task)) = relock(queue).pop_front() else {
                        break;
                    };
                    let job = task.job;
                    let start = Instant::now();
                    let ran = catch_unwind(AssertUnwindSafe(job));
                    let sim_seconds = start.elapsed().as_secs_f64();
                    warn_if_over_deadline(&task.label, sim_seconds, deadline);
                    let metric = CellMetric {
                        label: task.label.clone(),
                        benchmark: String::new(),
                        scenario: String::new(),
                        refs: task.refs,
                        prep_seconds: 0.0,
                        sim_seconds,
                    };
                    let outcome = match ran {
                        Ok(result) => CellOutcome::Ok(result),
                        Err(payload) => CellOutcome::Failed {
                            label: task.label,
                            payload: panic_message(payload),
                        },
                    };
                    if tx.send((idx, outcome, metric)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    collect(rx, n)
}

/// Runs self-contained tasks (no shared preparation) across at most
/// `jobs` worker threads; results come back in submission order. A
/// failing task panics in the caller — use [`run_tasks_outcomes`] for
/// sweeps that must survive failures.
pub fn run_tasks<R: Send>(tasks: Vec<SweepTask<R>>, jobs: usize) -> Vec<R> {
    run_tasks_outcomes(tasks, jobs)
        .into_iter()
        .map(CellOutcome::unwrap_or_panic)
        .collect()
}

/// Reorders completion-order results into submission order and appends
/// the metrics (also in submission order) to the global registry.
fn collect<R>(
    rx: mpsc::Receiver<(usize, CellOutcome<R>, CellMetric)>,
    n: usize,
) -> Vec<CellOutcome<R>> {
    let mut slots: Vec<Option<(CellOutcome<R>, CellMetric)>> =
        (0..n).map(|_| None).collect();
    for (idx, outcome, metric) in rx {
        slots[idx] = Some((outcome, metric));
    }
    let mut results = Vec::with_capacity(n);
    let mut metrics = relock(&METRICS);
    for slot in slots {
        let (outcome, metric) = slot.expect("every cell reports exactly once");
        results.push(outcome);
        metrics.push(metric);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_tlb::config::TlbConfig;
    use colt_workloads::spec::benchmark;

    fn quick_cfg(tlb: TlbConfig) -> SimConfig {
        SimConfig { pattern_seed: 0x5EED, ..SimConfig::new(tlb).with_accesses(10_000) }
    }

    /// The metrics registry is process-global and the test harness runs
    /// tests concurrently, so tests that drain it must not interleave.
    static DRAIN: Mutex<()> = Mutex::new(());

    fn drain_lock() -> std::sync::MutexGuard<'static, ()> {
        DRAIN.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn results_come_back_in_submission_order_at_any_width() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Gobmk").unwrap();
        let make_cells = || {
            vec![
                SweepCell::sim("base", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
                SweepCell::sim("sa", &scenario, &spec, quick_cfg(TlbConfig::colt_sa())),
                SweepCell::sim("fa", &scenario, &spec, quick_cfg(TlbConfig::colt_fa())),
                SweepCell::sim("all", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
            ]
        };
        let serial = run_cells(make_cells(), 1);
        let wide = run_cells(make_cells(), 8);
        let _ = take_metrics();
        assert_eq!(serial.len(), 4);
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.tlb.accesses, b.tlb.accesses);
            assert_eq!(a.tlb.l1_misses, b.tlb.l1_misses);
            assert_eq!(a.tlb.l2_misses, b.tlb.l2_misses);
            assert_eq!(a.walker.walks, b.walker.walks);
            assert_eq!(a.walk_cycles, b.walk_cycles);
        }
        // The four configs must actually differ (the cells were not
        // accidentally collapsed onto one job).
        assert!(serial[1].tlb.l2_misses < serial[0].tlb.l2_misses);
    }

    #[test]
    fn preparation_is_shared_within_one_sweep() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Povray").unwrap();
        let cells = vec![
            SweepCell::sim("prep-share/a", &scenario, &spec, quick_cfg(TlbConfig::baseline())),
            SweepCell::sim("prep-share/b", &scenario, &spec, quick_cfg(TlbConfig::colt_all())),
        ];
        let _ = take_metrics();
        let results = run_cells(cells, 2);
        assert_eq!(results.len(), 2);
        // Concurrent driver tests append their own metrics; look only at
        // this sweep's labels.
        let metrics: Vec<CellMetric> = take_metrics()
            .into_iter()
            .filter(|m| m.label.starts_with("prep-share/"))
            .collect();
        assert_eq!(metrics.len(), 2);
        let prepped = metrics.iter().filter(|m| m.prep_seconds > 0.0).count();
        assert_eq!(prepped, 1, "exactly one cell builds the shared workload");
        assert_eq!(metrics[0].label, "prep-share/a");
        assert_eq!(metrics[1].label, "prep-share/b");
        assert!(metrics.iter().all(|m| m.refs == 11_000));
    }

    #[test]
    fn tasks_run_and_keep_order() {
        let _g = drain_lock();
        let tasks: Vec<SweepTask<usize>> = (0..16)
            .map(|i| SweepTask::new(format!("t{i}"), 0, move || i * i))
            .collect();
        let out = run_tasks(tasks, 4);
        let _ = take_metrics();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn generic_cells_share_preparation_with_sim_cells() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Mcf").unwrap();
        let cells = vec![SweepCell::new("contig", &scenario, &spec, 0, |w| {
            w.contiguity().average_contiguity()
        })];
        let avg = run_cells(cells, 3);
        let _ = take_metrics();
        assert!(avg[0] >= 1.0);
    }

    #[test]
    fn a_panicking_cell_fails_alone_while_the_rest_complete() {
        let _g = drain_lock();
        let scenario = Scenario::default_linux();
        let spec = benchmark("Gobmk").unwrap();
        let mut cells: Vec<SweepCell<u64>> = (0..6)
            .map(|i| {
                SweepCell::new(format!("iso/ok{i}"), &scenario, &spec, 0, move |w| {
                    w.contiguity().total_pages() + i
                })
            })
            .collect();
        cells.insert(
            3,
            SweepCell::new("iso/boom", &scenario, &spec, 0, |_| {
                panic!("deliberate cell failure");
            }),
        );
        let outcomes = run_cells_outcomes(cells, 4);
        let _ = take_metrics();
        assert_eq!(outcomes.len(), 7);
        let failed: Vec<&CellOutcome<u64>> =
            outcomes.iter().filter(|o| o.is_failed()).collect();
        assert_eq!(failed.len(), 1, "exactly one cell fails");
        match failed[0] {
            CellOutcome::Failed { label, payload } => {
                assert_eq!(label, "iso/boom");
                assert!(payload.contains("deliberate cell failure"));
            }
            CellOutcome::Ok(_) => unreachable!(),
        }
        // Every other cell (including those queued after the panic on
        // the same workers) completed and kept submission order.
        let oks: Vec<u64> =
            outcomes.into_iter().filter_map(CellOutcome::ok).collect();
        assert_eq!(oks.len(), 6);
        let base = oks[0];
        assert_eq!(oks, (0..6).map(|i| base + i).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_task_fails_alone_while_the_rest_complete() {
        let _g = drain_lock();
        let tasks: Vec<SweepTask<usize>> = (0..8)
            .map(|i| {
                SweepTask::new(format!("tiso{i}"), 0, move || {
                    if i == 5 {
                        panic!("task {i} exploded");
                    }
                    i * 10
                })
            })
            .collect();
        let outcomes = run_tasks_outcomes(tasks, 3);
        let _ = take_metrics();
        assert_eq!(outcomes.iter().filter(|o| o.is_failed()).count(), 1);
        match &outcomes[5] {
            CellOutcome::Failed { label, payload } => {
                assert_eq!(label, "tiso5");
                assert!(payload.contains("task 5 exploded"));
            }
            CellOutcome::Ok(_) => panic!("task 5 should have failed"),
        }
        for (i, o) in outcomes.iter().enumerate() {
            if i != 5 {
                assert!(matches!(o, CellOutcome::Ok(v) if *v == i * 10));
            }
        }
    }

    #[test]
    fn failing_preparation_becomes_a_failed_outcome_not_a_panic() {
        let _g = drain_lock();
        // A scenario with fewer frames than memhog wants to pin cannot
        // prepare; the cell must fail gracefully, and a healthy sibling
        // cell in the same sweep must still run.
        let broken = Scenario { nr_frames: 64, ..Scenario::default_linux() };
        let healthy = Scenario::default_linux();
        let spec = benchmark("Bzip2").unwrap();
        let cells = vec![
            SweepCell::new("prep-fail/broken", &broken, &spec, 0, |w| {
                w.contiguity().total_pages()
            }),
            SweepCell::new("prep-fail/healthy", &healthy, &spec, 0, |w| {
                w.contiguity().total_pages()
            }),
        ];
        let outcomes = run_cells_outcomes(cells, 2);
        let _ = take_metrics();
        assert!(outcomes[0].is_failed(), "tiny scenario must fail to prepare");
        match &outcomes[0] {
            CellOutcome::Failed { label, .. } => assert_eq!(label, "prep-fail/broken"),
            CellOutcome::Ok(_) => unreachable!(),
        }
        assert!(matches!(&outcomes[1], CellOutcome::Ok(pages) if *pages > 0));
    }
}
