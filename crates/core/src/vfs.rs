//! The storage seam: a small virtual-filesystem trait the durable
//! writers (`journal`, `artifact`, `snapshot_cache`, the serve
//! `--cache-dir`) route every create/write/fsync/rename/read/dir-fsync
//! through.
//!
//! In production the seam is [`RealVfs`], a zero-cost pass-through to
//! `std::fs`. Under `repro --io-faults` or `repro torture` a
//! [`FaultyVfs`] is [installed](install) process-wide instead: it
//! performs the real operations but consults a seeded
//! [`IoFaultPlan`](crate::io_faults::IoFaultPlan) before each one, and
//! models the page cache — per-file *written* vs *durable* lengths, and
//! renames that stay volatile until their directory is fsynced — so a
//! simulated [`power_cut`](FaultyVfs::power_cut) can roll the disk back
//! to exactly what an honest fsync history guaranteed. Lying fsyncs and
//! dropped renames are the gap between the two, which is what the
//! crash-consistency torture harness exists to probe. See DESIGN.md §16.
//!
//! The seam is installed globally (like the snapshot cache and the
//! artifact tmp counter) because the writers are reached from sweep
//! worker threads and process-global startup paths; threading a handle
//! through every signature would change half the crate for the benefit
//! of one test harness.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

use crate::io_faults::{self, injected_error, IoFaultCounts, IoFaultKind, IoFaultPlan};
use colt_os_mem::faults::FaultConfig;

/// An open file produced by [`Vfs::create`] or [`Vfs::open_append`].
pub trait VfsFile: Send {
    /// Writes the whole buffer or fails.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes userspace buffers (no durability implied).
    fn flush(&mut self) -> io::Result<()>;
    /// fdatasync: on Ok, everything written so far is durable — unless
    /// the disk lies, which is the point of [`FaultyVfs`].
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The storage operations the durability substrate depends on.
pub trait Vfs: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens a file for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (cleanup; never fault-injected, but refused after
    /// a power cut — which is how tmp litter gets orphaned).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory chain.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// fsyncs a directory, making renames within it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        Write::flush(self)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
}

/// Pass-through to `std::fs` — the production seam.
#[derive(Clone, Copy, Default, Debug)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(File::create(path)?))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(OpenOptions::new().create(true).append(true).open(path)?))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_data()
    }
}

static INSTALLED: RwLock<Option<Arc<dyn Vfs>>> = RwLock::new(None);

fn real() -> Arc<dyn Vfs> {
    static REAL: OnceLock<Arc<dyn Vfs>> = OnceLock::new();
    REAL.get_or_init(|| Arc::new(RealVfs)).clone()
}

/// Installs a seam process-wide. Every durable writer picks it up on its
/// next operation.
pub fn install(vfs: Arc<dyn Vfs>) {
    *INSTALLED.write().unwrap_or_else(PoisonError::into_inner) = Some(vfs);
}

/// Restores the pass-through [`RealVfs`].
pub fn reset() {
    *INSTALLED.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// The currently installed seam ([`RealVfs`] unless something was
/// [`install`]ed).
pub fn active() -> Arc<dyn Vfs> {
    INSTALLED
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_else(real)
}

/// Accounts an injected error against its owning layer and passes the
/// result through. Every durable writer wraps its `Vfs` calls in this at
/// the call site, which is what makes the torture ledger identity exact:
/// errors are accounted exactly once, where first observed, and
/// propagated errors arrive upstream already counted.
pub(crate) fn acct<T>(layer: &'static str, r: io::Result<T>) -> io::Result<T> {
    if let Err(e) = &r {
        let _ = io_faults::account(layer, e);
    }
    r
}

/// Volatile (page-cache) state of one file under [`FaultyVfs`].
#[derive(Clone, Copy, Default, Debug)]
struct FileVol {
    /// Bytes an honest fsync has guaranteed.
    durable: u64,
    /// Bytes written (durable + still volatile).
    written: u64,
}

/// A rename that has happened in the namespace but whose directory has
/// not been fsynced — a power cut undoes it.
#[derive(Debug)]
struct PendingRename {
    from: PathBuf,
    to: PathBuf,
    /// Previous content of `to` if the rename clobbered an existing
    /// file; restored on rollback.
    clobbered: Option<Vec<u8>>,
}

#[derive(Debug)]
struct FaultyState {
    plan: IoFaultPlan,
    /// After this many fsync attempts (file or dir), the disk dies until
    /// [`FaultyVfs::power_cut`] "reboots" it.
    cut_after_syncs: Option<u64>,
    syncs_seen: u64,
    dead: bool,
    vol: BTreeMap<PathBuf, FileVol>,
    pending_renames: Vec<PendingRename>,
    renames_dropped: u64,
}

/// What a simulated power cut rolled back.
#[derive(Clone, Copy, Default, Debug)]
pub struct PowerCutReport {
    /// Renames undone (their directory was never successfully fsynced).
    pub renames_dropped: u64,
    /// Files truncated back to their durable length.
    pub files_truncated: u64,
    /// Volatile bytes discarded by those truncations.
    pub bytes_discarded: u64,
}

/// The fault-injecting seam: real I/O plus a seeded plan and a
/// volatile-state model that a [`power_cut`](Self::power_cut) rolls
/// back.
#[derive(Clone)]
pub struct FaultyVfs {
    state: Arc<Mutex<FaultyState>>,
}

impl FaultyVfs {
    /// A faulty seam drawing from `config`, with no crash point.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            state: Arc::new(Mutex::new(FaultyState {
                plan: IoFaultPlan::new(config),
                cut_after_syncs: None,
                syncs_seen: 0,
                dead: false,
                vol: BTreeMap::new(),
                pending_renames: Vec::new(),
                renames_dropped: 0,
            })),
        }
    }

    /// Arms a crash point: after the `syncs`-th fsync attempt the disk
    /// goes dead (every operation fails, tagged `post-cut`) until
    /// [`power_cut`](Self::power_cut).
    pub fn cut_after_syncs(self, syncs: u64) -> Self {
        self.lock().cut_after_syncs = Some(syncs);
        self
    }

    fn lock(&self) -> MutexGuard<'_, FaultyState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-kind injection counters so far.
    pub fn counts(&self) -> IoFaultCounts {
        self.lock().plan.counts()
    }

    /// Decision points consumed so far.
    pub fn decisions(&self) -> u64 {
        self.lock().plan.decisions()
    }

    /// Renames rolled back by power cuts so far.
    pub fn renames_dropped(&self) -> u64 {
        self.lock().renames_dropped
    }

    /// Has the armed crash point fired?
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Applies the simulated power cut: rolls every non-durable rename
    /// back (restoring clobbered destinations), truncates every file to
    /// its durable length, and revives the disk — the "reboot". Volatile
    /// bookkeeping is cleared; fault counters survive for the ledger.
    pub fn power_cut(&self) -> PowerCutReport {
        let mut st = self.lock();
        let mut report = PowerCutReport::default();
        let pending: Vec<PendingRename> = st.pending_renames.drain(..).rev().collect();
        for pr in pending {
            if pr.to.exists() {
                let _ = std::fs::rename(&pr.to, &pr.from);
                if let Some(vol) = st.vol.remove(&pr.to) {
                    st.vol.insert(pr.from.clone(), vol);
                }
            }
            if let Some(old) = pr.clobbered {
                let _ = std::fs::write(&pr.to, old);
                st.vol.remove(&pr.to);
            }
            st.renames_dropped += 1;
            report.renames_dropped += 1;
        }
        for (path, vol) in std::mem::take(&mut st.vol) {
            if vol.written > vol.durable {
                if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                    if f.set_len(vol.durable).is_ok() {
                        report.files_truncated += 1;
                        report.bytes_discarded += vol.written - vol.durable;
                    }
                }
            }
        }
        st.dead = false;
        st.cut_after_syncs = None;
        report
    }

    /// One fsync attempt (file or dir): advances the crash-point clock
    /// and returns the plan's verdict for it.
    fn sync_verdict(st: &mut FaultyState) -> Option<IoFaultKind> {
        let verdict = st.plan.sync_fault();
        st.syncs_seen += 1;
        if st.cut_after_syncs == Some(st.syncs_seen) {
            st.dead = true;
        }
        verdict
    }

    fn dead_error(st: &mut FaultyState, path: &Path) -> io::Error {
        st.plan.note_post_cut();
        injected_error(IoFaultKind::PostCut, path)
    }
}

struct FaultyFile {
    path: PathBuf,
    file: File,
    state: Arc<Mutex<FaultyState>>,
}

impl VfsFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        // Lock through the field, not a &self helper, so the borrow
        // stays disjoint from `self.file`.
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, &self.path));
        }
        match st.plan.write_fault() {
            Some(IoFaultKind::Enospc) => {
                Err(injected_error(IoFaultKind::Enospc, &self.path))
            }
            Some(kind) => {
                // Torn write: a strict prefix lands, then the error.
                let keep = if buf.len() > 1 {
                    (st.plan.extra() as usize) % buf.len()
                } else {
                    0
                };
                if Write::write_all(&mut self.file, &buf[..keep]).is_ok() {
                    st.vol.entry(self.path.clone()).or_default().written += keep as u64;
                }
                Err(injected_error(kind, &self.path))
            }
            None => {
                Write::write_all(&mut self.file, buf)?;
                st.vol.entry(self.path.clone()).or_default().written += buf.len() as u64;
                Ok(())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Write::flush(&mut self.file)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, &self.path));
        }
        match FaultyVfs::sync_verdict(&mut st) {
            Some(IoFaultKind::SyncLie) => Ok(()), // durable length unchanged
            Some(kind) => Err(injected_error(kind, &self.path)),
            None => {
                self.file.sync_data()?;
                let vol = st.vol.entry(self.path.clone()).or_default();
                vol.durable = vol.written;
                Ok(())
            }
        }
    }
}

impl Vfs for FaultyVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, path));
        }
        let file = File::create(path)?;
        st.vol.insert(path.to_path_buf(), FileVol::default());
        Ok(Box::new(FaultyFile {
            path: path.to_path_buf(),
            file,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, path));
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // Pre-existing bytes are assumed durable: the journal fsyncs
        // every record before acknowledging it.
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        st.vol.insert(path.to_path_buf(), FileVol { durable: len, written: len });
        Ok(Box::new(FaultyFile {
            path: path.to_path_buf(),
            file,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, path));
        }
        // Real failures (e.g. NotFound) propagate untagged without
        // consuming a draw: absence is not a fault.
        let mut bytes = std::fs::read(path)?;
        match st.plan.read_fault(bytes.len()) {
            Some(IoFaultKind::BitFlip) => {
                let bit = (st.plan.extra() as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                io_faults::record_flip(path);
                Ok(bytes)
            }
            Some(kind) => Err(injected_error(kind, path)),
            None => Ok(bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, to));
        }
        if st.plan.rename_fault() {
            return Err(injected_error(IoFaultKind::RenameFail, to));
        }
        let clobbered = if to.exists() { std::fs::read(to).ok() } else { None };
        std::fs::rename(from, to)?;
        if let Some(vol) = st.vol.remove(from) {
            st.vol.insert(to.to_path_buf(), vol);
        }
        st.pending_renames.push(PendingRename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            clobbered,
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, path));
        }
        std::fs::remove_file(path)?;
        st.vol.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, path));
        }
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.dead {
            return Err(FaultyVfs::dead_error(&mut st, dir));
        }
        match FaultyVfs::sync_verdict(&mut st) {
            Some(IoFaultKind::SyncLie) => Ok(()), // renames stay volatile
            Some(kind) => Err(injected_error(kind, dir)),
            None => {
                File::open(dir)?.sync_data()?;
                st.pending_renames.retain(|pr| pr.to.parent() != Some(dir));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(case: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("colt-vfs-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quiet() -> FaultConfig {
        FaultConfig { rate: 0.0, window: 0, seed: 1 }
    }

    fn write_through(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = vfs.create(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = scratch("real");
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        let vfs = RealVfs;
        write_through(&vfs, &a, b"hello").unwrap();
        vfs.rename(&a, &b).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.read(&b).unwrap(), b"hello");
        vfs.remove_file(&b).unwrap();
        assert!(vfs.read(&b).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quiet_faulty_vfs_is_transparent() {
        let dir = scratch("quiet");
        let vfs = FaultyVfs::new(quiet());
        let p = dir.join("x.txt");
        write_through(&vfs, &p, b"payload").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"payload");
        assert_eq!(vfs.counts().total(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_rate_write_faults_are_tagged_and_counted() {
        let dir = scratch("wfault");
        let vfs = FaultyVfs::new(FaultConfig { rate: 1.0, window: 0, seed: 3 });
        let mut enospc = 0;
        let mut short = 0;
        for i in 0..20 {
            let p = dir.join(format!("f{i}"));
            let mut f = vfs.create(&p).unwrap();
            let e = f.write_all(b"0123456789abcdef").unwrap_err();
            match io_faults::classify(&e).unwrap() {
                IoFaultKind::Enospc => {
                    enospc += 1;
                    assert_eq!(std::fs::read(&p).unwrap(), b"", "ENOSPC lands nothing");
                }
                IoFaultKind::ShortWrite => {
                    short += 1;
                    assert!(
                        std::fs::read(&p).unwrap().len() < 16,
                        "torn write lands a strict prefix"
                    );
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
        let c = vfs.counts();
        assert_eq!((c.enospc, c.short_writes), (enospc, short));
        assert_eq!(c.total(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lying_fsync_loses_bytes_at_power_cut() {
        let dir = scratch("lie");
        let p = dir.join("lied.bin");
        // Find a seed whose first draw is a lying fsync; the write below
        // bypasses the plan, so the sync is the plan's first decision.
        let seed = (0..64)
            .find(|&s| {
                IoFaultPlan::new(FaultConfig { rate: 1.0, window: 0, seed: s })
                    .sync_fault()
                    == Some(IoFaultKind::SyncLie)
            })
            .expect("some seed lies first");
        let vfs = FaultyVfs::new(FaultConfig { rate: 1.0, window: 0, seed });
        {
            std::fs::write(&p, b"volatile").unwrap();
            vfs.lock().vol.insert(p.clone(), FileVol { durable: 0, written: 8 });
            let mut liar: Box<dyn VfsFile> = Box::new(FaultyFile {
                path: p.clone(),
                file: OpenOptions::new().append(true).open(&p).unwrap(),
                state: Arc::clone(&vfs.state),
            });
            assert!(liar.sync_data().is_ok(), "the fsync lies: reports success");
        }
        assert_eq!(vfs.counts().sync_lies, 1);
        let report = vfs.power_cut();
        assert_eq!(report.files_truncated, 1);
        assert_eq!(report.bytes_discarded, 8);
        assert_eq!(std::fs::read(&p).unwrap(), b"", "lied-about bytes are gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_rename_is_dropped_at_power_cut_and_clobbered_dest_restored() {
        let dir = scratch("rename");
        let tmp = dir.join("artifact.json.tmp-1-1");
        let dest = dir.join("artifact.json");
        std::fs::write(&dest, b"old durable artifact").unwrap();
        let vfs = FaultyVfs::new(quiet());
        write_through(&vfs, &tmp, b"new artifact").unwrap();
        vfs.rename(&tmp, &dest).unwrap();
        // No sync_dir: the rename is in the namespace but not durable.
        assert_eq!(std::fs::read(&dest).unwrap(), b"new artifact");
        let report = vfs.power_cut();
        assert_eq!(report.renames_dropped, 1);
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            b"old durable artifact",
            "power cut reverts the unsynced rename"
        );
        assert_eq!(
            std::fs::read(&tmp).unwrap(),
            b"new artifact",
            "the tmp file reappears as crash litter"
        );
        assert_eq!(vfs.renames_dropped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synced_rename_survives_power_cut() {
        let dir = scratch("rename-durable");
        let tmp = dir.join("a.tmp-1-2");
        let dest = dir.join("a.json");
        let vfs = FaultyVfs::new(quiet());
        write_through(&vfs, &tmp, b"durable").unwrap();
        vfs.rename(&tmp, &dest).unwrap();
        vfs.sync_dir(&dir).unwrap();
        let report = vfs.power_cut();
        assert_eq!(report.renames_dropped, 0);
        assert_eq!(std::fs::read(&dest).unwrap(), b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_dies_after_the_armed_sync_and_reboots_at_power_cut() {
        let dir = scratch("cut");
        let vfs = FaultyVfs::new(quiet()).cut_after_syncs(1);
        let p = dir.join("j.jsonl");
        let mut f = vfs.open_append(&p).unwrap();
        f.write_all(b"record 1\n").unwrap();
        f.sync_data().unwrap(); // the 1st sync: clock hits the cut
        assert!(vfs.is_dead());
        let e = f.write_all(b"record 2\n").unwrap_err();
        assert_eq!(io_faults::classify(&e), Some(IoFaultKind::PostCut));
        let e = vfs.read(&p).unwrap_err();
        assert_eq!(io_faults::classify(&e), Some(IoFaultKind::PostCut));
        assert_eq!(vfs.counts().post_cut, 2);
        vfs.power_cut();
        assert!(!vfs.is_dead());
        assert_eq!(vfs.read(&p).unwrap(), b"record 1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_are_recorded_until_confirmed() {
        let _guard = io_faults::ledger_test_guard();
        io_faults::reset_ledger();
        let dir = scratch("flip");
        let p = dir.join("payload.bin");
        std::fs::write(&p, vec![0u8; 256]).unwrap();
        // Walk seeds until a read comes back flipped.
        let mut flipped = None;
        for seed in 0..64 {
            let vfs = FaultyVfs::new(FaultConfig { rate: 1.0, window: 0, seed });
            if let Ok(bytes) = vfs.read(&p) {
                flipped = Some((vfs, bytes));
                break;
            }
        }
        let (vfs, bytes) = flipped.expect("some seed flips first");
        assert_eq!(vfs.counts().bit_flips, 1);
        assert_eq!(bytes.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        assert_eq!(std::fs::read(&p).unwrap(), vec![0u8; 256], "disk untouched");
        assert_eq!(io_faults::ledger().flips_pending, 1);
        assert!(io_faults::confirm_flip(&p));
        assert_eq!(io_faults::ledger().flips_pending, 0);
        io_faults::reset_ledger();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_swaps_the_active_seam() {
        let _guard = io_faults::ledger_test_guard();
        let faulty = Arc::new(FaultyVfs::new(quiet()));
        install(faulty.clone());
        let dir = scratch("install");
        let p = dir.join("via-seam.txt");
        write_through(active().as_ref(), &p, b"seamed").unwrap();
        reset();
        assert_eq!(active().read(&p).unwrap(), b"seamed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
