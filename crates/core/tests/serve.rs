//! Integration suite for `repro serve`: the determinism guarantee
//! (served bytes == direct bytes), the LRU result cache, quota and
//! backpressure rejection under flood, and warm restart from durable
//! snapshots.
//!
//! The server and the snapshot cache share process-global state (the
//! in-memory preparation cache, the stats counters, and — in the warm
//! restart test — the `COLT_SNAPSHOT_DIR` environment variable), so
//! every test serializes on [`GATE`].

use colt_core::experiments::ExperimentOptions;
use colt_core::serve::{self, json, ServeConfig};
use colt_core::sim::{self, SimConfig};
use colt_core::snapshot_cache;
use colt_tlb::config::TlbConfig;
use colt_workloads::scenario::Scenario;
use colt_workloads::spec::benchmark;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A quiet server on an ephemeral port with fast-test bounds.
fn test_config() -> ServeConfig {
    ServeConfig { quiet: true, jobs: 2, ..ServeConfig::default() }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().expect("clone");
        Client { writer, reader: BufReader::new(stream) }
    }

    fn request(&mut self, line: &str) -> json::Json {
        writeln!(self.writer, "{line}").expect("send");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "server closed the connection mid-request");
        json::parse(response.trim()).expect("response parses")
    }

    fn shutdown(mut self) {
        let r = self.request("{\"op\": \"shutdown\"}");
        assert_eq!(r.get("ok").and_then(json::Json::as_bool), Some(true));
    }
}

fn ok(response: &json::Json) -> bool {
    response.get("ok").and_then(json::Json::as_bool) == Some(true)
}

#[test]
fn served_sweep_is_byte_identical_to_direct_and_cached_on_repeat() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let port = handle.port;
    let mut client = Client::connect(port);

    let line = "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 20000, \
                \"bench\": \"Gobmk\"}";
    let first = client.request(line);
    assert!(ok(&first), "first sweep succeeds: {first:?}");
    let first_bytes =
        first.get("bytes").and_then(json::Json::as_str).expect("bytes").to_string();

    // Determinism guarantee: the socket bytes equal the direct run's.
    let opts = serve::sweep_options(
        Some(20_000),
        Some("Gobmk"),
        None,
        colt_os_mem::policy::PolicyKind::Default,
        1,
        ServeConfig::default().max_accesses,
    );
    let direct = serve::sweep_csv("fig18", &opts).expect("direct run");
    assert_eq!(
        first_bytes, direct,
        "a sweep served over the socket must be byte-identical to the same \
         sweep run directly"
    );

    // Second identical request: served from the LRU result cache, same
    // bytes, no recompute.
    let second = client.request(line);
    assert!(ok(&second));
    assert_eq!(
        second.get("cached").and_then(json::Json::as_bool),
        Some(true),
        "the second identical sweep must be a cache hit: {second:?}"
    );
    assert_eq!(
        second.get("bytes").and_then(json::Json::as_str),
        Some(first_bytes.as_str()),
        "cached bytes must be identical to the originally served bytes"
    );

    // A different access budget is a different fingerprint — not cached.
    let third = client.request(
        "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 21000, \
         \"bench\": \"Gobmk\"}",
    );
    assert!(ok(&third));
    assert_eq!(third.get("cached").and_then(json::Json::as_bool), Some(false));

    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.failed_cells, 0);
    assert_eq!(summary.sweeps, 3);
    assert_eq!(summary.sweep_cache_hits, 1);
}

#[test]
fn served_translate_matches_a_direct_simulation() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let mut client = Client::connect(handle.port);

    let response = client.request(
        "{\"op\": \"translate\", \"benchmark\": \"Gobmk\", \"config\": \"colt_all\", \
         \"accesses\": 5000}",
    );
    assert!(ok(&response), "{response:?}");

    let spec = benchmark("Gobmk").unwrap();
    let workload = Scenario::default_linux().prepare(&spec).expect("prepare");
    let direct = sim::run(
        &workload,
        &SimConfig::new(TlbConfig::colt_all()).with_accesses(5000),
    );
    for (field, expected) in [
        ("accesses", direct.tlb.accesses),
        ("l1_misses", direct.tlb.l1_misses),
        ("l2_misses", direct.tlb.l2_misses),
        ("walks", direct.walker.walks),
        ("walk_cycles", direct.walk_cycles),
    ] {
        assert_eq!(
            response.get(field).and_then(json::Json::as_u64),
            Some(expected),
            "served '{field}' must match the direct simulation"
        );
    }

    // Unknown names are errors, not crashes, and the connection lives on.
    let bad = client.request("{\"op\": \"translate\", \"benchmark\": \"NotABench\"}");
    assert!(!ok(&bad));
    let ping = client.request("{\"op\": \"ping\"}");
    assert!(ok(&ping));

    client.shutdown();
    assert_eq!(handle.wait().failed_cells, 0);
}

#[test]
fn served_translate_honors_the_policy_field_and_rejects_unknown_policies() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let mut client = Client::connect(handle.port);

    // A no_thp translate must differ from the default-policy run (no
    // huge pages → more walks) and match the direct no_thp simulation:
    // the pool the server prepared under no_thp was keyed separately.
    let response = client.request(
        "{\"op\": \"translate\", \"benchmark\": \"Gobmk\", \"config\": \"colt_all\", \
         \"accesses\": 5000, \"policy\": \"no_thp\"}",
    );
    assert!(ok(&response), "{response:?}");

    let spec = benchmark("Gobmk").unwrap();
    let policy = colt_os_mem::policy::PolicyKind::NoThp;
    let workload =
        Scenario::default_linux().with_policy(policy).prepare(&spec).expect("prepare");
    let direct = sim::run(
        &workload,
        &SimConfig::new(TlbConfig::colt_all()).with_accesses(5000),
    );
    for (field, expected) in [
        ("accesses", direct.tlb.accesses),
        ("l1_misses", direct.tlb.l1_misses),
        ("walks", direct.walker.walks),
        ("walk_cycles", direct.walk_cycles),
    ] {
        assert_eq!(
            response.get(field).and_then(json::Json::as_u64),
            Some(expected),
            "served '{field}' under no_thp must match the direct no_thp simulation"
        );
    }

    // Unknown policies are rejected before anything is prepared, and
    // the connection lives on.
    let bad = client.request(
        "{\"op\": \"translate\", \"benchmark\": \"Gobmk\", \"policy\": \"bogus\"}",
    );
    assert!(!ok(&bad), "{bad:?}");
    assert!(ok(&client.request("{\"op\": \"ping\"}")));

    client.shutdown();
    assert_eq!(handle.wait().failed_cells, 0);
}

#[test]
fn quota_exhaustion_rejects_politely_and_keeps_the_connection() {
    let _g = lock();
    let cfg = ServeConfig { quota: 2, ..test_config() };
    let handle = serve::start(cfg).expect("server starts");
    let mut client = Client::connect(handle.port);

    assert!(ok(&client.request("{\"op\": \"ping\"}")));
    assert!(ok(&client.request("{\"op\": \"ping\"}")));
    // Request 3 is over the quota of 2: politely rejected, not dropped.
    let rejected = client.request("{\"op\": \"ping\"}");
    assert!(!ok(&rejected));
    assert_eq!(
        rejected.get("rejected").and_then(json::Json::as_str),
        Some("quota"),
        "rejection must be machine-readable: {rejected:?}"
    );
    // Still rejected (the quota does not reset), still connected…
    let again = client.request("{\"op\": \"stats\"}");
    assert_eq!(again.get("rejected").and_then(json::Json::as_str), Some("quota"));
    // …and a fresh connection gets a fresh quota.
    let mut second = Client::connect(handle.port);
    assert!(ok(&second.request("{\"op\": \"ping\"}")));

    // Shutdown is exempt so an operator is never locked out.
    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.rejected_quota, 2);
    assert_eq!(summary.failed_cells, 0);
}

#[test]
fn backpressure_rejects_translates_busy_while_pings_survive_a_flood() {
    let _g = lock();
    // queue_cap 0: every translate meets a full dispatch queue.
    let cfg = ServeConfig { queue_cap: 0, ..test_config() };
    let handle = serve::start(cfg).expect("server starts");
    let port = handle.port;

    std::thread::scope(|scope| {
        let mut flood = Vec::new();
        for _ in 0..6 {
            flood.push(scope.spawn(move || {
                let mut client = Client::connect(port);
                let mut busy = 0u32;
                for i in 0..20 {
                    if i % 2 == 0 {
                        let r = client.request(
                            "{\"op\": \"translate\", \"benchmark\": \"Gobmk\", \
                             \"accesses\": 2000}",
                        );
                        assert_eq!(
                            r.get("rejected").and_then(json::Json::as_str),
                            Some("busy"),
                            "with a zero-capacity queue every translate is \
                             politely rejected: {r:?}"
                        );
                        busy += 1;
                    } else {
                        // The flood must not starve trivial requests.
                        assert!(ok(&client.request("{\"op\": \"ping\"}")));
                    }
                }
                busy
            }));
        }
        let total: u32 = flood.into_iter().map(|h| h.join().expect("no panic")).sum();
        assert_eq!(total, 60);
    });

    Client::connect(port).shutdown();
    let summary = handle.wait();
    assert_eq!(summary.rejected_busy, 60);
    assert_eq!(summary.translates, 0, "nothing was dispatched");
    assert_eq!(summary.failed_cells, 0);
}

#[test]
fn a_restarted_server_resumes_warm_from_disk_snapshots() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!(
        "colt-serve-restart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("COLT_SNAPSHOT_DIR", &dir);
    snapshot_cache::set_disk_persistence(true);
    snapshot_cache::clear_memory();
    let _ = snapshot_cache::take_stats();

    // First server lifetime: a cold translate populates the durable
    // snapshot layer.
    let handle = serve::start(test_config()).expect("first server");
    let mut client = Client::connect(handle.port);
    let line = "{\"op\": \"translate\", \"benchmark\": \"Bzip2\", \"accesses\": 3000}";
    let first = client.request(line);
    assert!(ok(&first), "{first:?}");
    client.shutdown();
    assert_eq!(handle.wait().failed_cells, 0);
    // The server drains the snapshot-cache stats into its own counters
    // after every batch, so the cold build's evidence is the durable
    // snapshot it left behind.
    let snapshots = std::fs::read_dir(&dir).unwrap().count();
    assert!(snapshots >= 1, "a .snap file must survive the first server");

    // "Restart": a fresh server in a process whose memory cache is
    // empty — exactly a new process's state. The preparation must come
    // from the snapshot on disk, not a rebuild.
    snapshot_cache::clear_memory();
    let handle = serve::start(test_config()).expect("second server");
    let mut client = Client::connect(handle.port);
    let warm_response = client.request(line);
    assert!(ok(&warm_response));
    assert_eq!(
        warm_response.get("l1_misses").and_then(json::Json::as_u64),
        first.get("l1_misses").and_then(json::Json::as_u64),
        "a snapshot-restored preparation must simulate identically"
    );
    // The dispatcher absorbs the cache stats just after replying, so
    // poll briefly for the counter to land.
    let mut stats_client = Client::connect(handle.port);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = stats_client.request("{\"op\": \"stats\"}");
        let disk_hits =
            stats.get("prep_disk_hits").and_then(json::Json::as_u64).unwrap_or(0);
        if disk_hits >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the restarted server must warm up from disk, not rebuild: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    client.shutdown();
    assert_eq!(handle.wait().failed_cells, 0);

    // Leave the process the way library tests expect it.
    snapshot_cache::set_disk_persistence(false);
    std::env::remove_var("COLT_SNAPSHOT_DIR");
    snapshot_cache::clear_memory();
    let _ = snapshot_cache::take_stats();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_concurrent_sweeps_coalesce_behind_one_leader() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let port = handle.port;

    let line = "{\"op\": \"sweep\", \"experiment\": \"fig19\", \"accesses\": 8000, \
                \"bench\": \"Bzip2\"}";
    let bytes: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(port);
                    let r = client.request(line);
                    assert!(ok(&r), "{r:?}");
                    r.get("bytes").and_then(json::Json::as_str).unwrap().to_string()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("no panic")).collect()
    });
    assert!(bytes.windows(2).all(|w| w[0] == w[1]), "all four got the same bytes");

    Client::connect(port).shutdown();
    let summary = handle.wait();
    assert_eq!(summary.sweeps, 4);
    assert!(
        summary.sweep_cache_hits + summary.sweep_coalesced >= 3,
        "at most one of four identical sweeps computes; the rest are cache \
         hits or coalesced followers (got {} + {})",
        summary.sweep_cache_hits,
        summary.sweep_coalesced
    );
    assert_eq!(summary.failed_cells, 0);
}

#[test]
fn malformed_lines_and_unknown_ops_get_errors_not_disconnects() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let mut client = Client::connect(handle.port);

    for bad in [
        "this is not json",
        "{\"op\": \"fly\"}",
        "{\"op\": \"sweep\"}",
        "{\"op\": \"sweep\", \"experiment\": \"not-an-experiment\"}",
        "{\"op\": \"translate\"}",
        "{}",
    ] {
        let r = client.request(bad);
        assert!(!ok(&r), "{bad:?} must be rejected");
        assert!(
            r.get("error").and_then(json::Json::as_str).is_some(),
            "rejections carry an error message"
        );
    }
    // The connection survived all of it.
    assert!(ok(&client.request("{\"op\": \"ping\"}")));

    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.failed_cells, 0);
}

#[test]
fn wait_returns_promptly_after_a_socket_shutdown() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let port = handle.port;
    let start = std::time::Instant::now();
    Client::connect(port).shutdown();
    let summary = handle.wait();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown must converge quickly, not wait out long timeouts"
    );
    assert_eq!(summary.failed_cells, 0);
}
