//! Integration suite for the chaos-hardened serve layer: fault
//! injection survived end to end (via `chaos_serve::run`), deadlines,
//! load shedding, oversized-line rejection, idempotent retries, slow-
//! client eviction, client disconnect mid-sweep, and a mid-request
//! kill followed by a warm restart from the drained result cache.
//!
//! The server and the snapshot cache share process-global state, so
//! every test serializes on [`GATE`] (the suite's own gate; this
//! binary runs in its own process, separate from `tests/serve.rs`).

use colt_core::chaos_serve::{self, ChaosServeConfig};
use colt_core::serve::{self, chaos::ChaosConfig, json, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A quiet server on an ephemeral port with fast-test bounds.
fn test_config() -> ServeConfig {
    ServeConfig { quiet: true, jobs: 2, ..ServeConfig::default() }
}

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "colt-chaos-test-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().expect("clone");
        Client { writer, reader: BufReader::new(stream) }
    }

    fn request(&mut self, line: &str) -> json::Json {
        writeln!(self.writer, "{line}").expect("send");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "server closed the connection mid-request");
        json::parse(response.trim()).expect("response parses")
    }

    fn shutdown(mut self) {
        let r = self.request("{\"op\": \"shutdown\"}");
        assert_eq!(r.get("ok").and_then(json::Json::as_bool), Some(true));
    }
}

fn ok(response: &json::Json) -> bool {
    response.get("ok").and_then(json::Json::as_bool) == Some(true)
}

fn rejected_as(response: &json::Json, kind: &str) -> bool {
    response.get("rejected").and_then(json::Json::as_str) == Some(kind)
}

/// The direct bytes a sweep request must match.
fn direct_bytes(experiment: &str, accesses: u64, bench: &str) -> String {
    let opts = serve::sweep_options(
        Some(accesses),
        Some(bench),
        None,
        colt_os_mem::policy::PolicyKind::Default,
        1,
        ServeConfig::default().max_accesses,
    );
    serve::sweep_csv(experiment, &opts).expect("direct run")
}

/// The full soak under a seeded fault plan: torn frames, resets,
/// stalls, and accept hiccups are injected, the retrying clients
/// recover every one, and all five verdicts hold — including byte
/// identity under retries and the warm restart from the drained cache.
#[test]
fn seeded_chaos_soak_recovers_every_fault_and_keeps_byte_identity() {
    let _g = lock();
    let out = scratch("soak").join("BENCH_chaos.json");
    let cfg = ChaosServeConfig {
        chaos: ChaosConfig { rate: 0.15, window: 0, seed: 7 },
        conns: 2,
        requests: 10,
        accesses: 500,
        sweep_every: 4,
        sweep_accesses: 1_000,
        jobs: 2,
        out: out.clone(),
        quiet: true,
        ..ChaosServeConfig::default()
    };
    let (payload, all_ok) = chaos_serve::run(&cfg).expect("soak infrastructure holds");
    assert!(all_ok, "every verdict must pass:\n{payload}");
    let doc = json::parse(&payload).expect("payload parses");
    let num = |k: &str| doc.get(k).and_then(json::Json::as_u64).unwrap_or(0);
    assert!(num("faults_injected") > 0, "the plan must actually inject:\n{payload}");
    assert_eq!(
        num("torn_frames") + num("resets") + num("accept_hiccups") + num("stalls"),
        num("faults_injected"),
        "per-kind counts must account for every fault"
    );
    assert_eq!(
        num("transport_errors"),
        num("torn_frames") + num("resets") + num("accept_hiccups"),
        "every disruptive fault surfaces as exactly one retried transport error"
    );
    assert!(out.exists(), "the artifact landed");
    let _ = std::fs::remove_dir_all(out.parent().unwrap());
}

/// A client that vanishes mid-sweep must not leak the flight: the
/// leader thread finishes, the bytes land in the cache, and a later
/// client gets them byte-identical to the direct run.
#[test]
fn client_disconnect_mid_sweep_still_lands_the_result_for_others() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let port = handle.port;
    let line = "{\"op\": \"sweep\", \"experiment\": \"fig19\", \"accesses\": 6000, \
                \"bench\": \"Bzip2\"}";

    // Fire the sweep, give the leader a moment to start, then vanish
    // without reading the response.
    {
        let mut doomed = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        writeln!(doomed, "{line}").expect("send");
        doomed.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    } // dropped: RST/close while the sweep is (or was just) in flight

    // A later client asking for the same sweep gets the finished bytes
    // (coalesced onto the still-running leader or straight from cache).
    let mut client = Client::connect(port);
    let deadline = Instant::now() + Duration::from_secs(30);
    let bytes = loop {
        let r = client.request(line);
        if ok(&r) {
            break r.get("bytes").and_then(json::Json::as_str).unwrap().to_string();
        }
        assert!(
            Instant::now() < deadline,
            "the abandoned sweep must still complete: {r:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        bytes,
        direct_bytes("fig19", 6000, "Bzip2"),
        "the survivor's bytes match the direct run"
    );

    client.shutdown();
    let summary = handle.wait();
    assert!(summary.drained_clean, "no sweep leader leaked");
    assert_eq!(summary.failed_cells, 0);
    assert_eq!(summary.panics, 0);
}

/// Killing the server mid-request drains gracefully: the in-flight
/// sweep finishes, its bytes are fsynced to the cache directory, and a
/// restarted server serves them from the warmed cache, byte-identical.
#[test]
fn kill_mid_request_then_warm_restart_serves_identical_bytes() {
    let _g = lock();
    let dir = scratch("restart");
    let cfg = ServeConfig { cache_dir: Some(dir.clone()), ..test_config() };
    let handle = serve::start(cfg.clone()).expect("first server");
    let port = handle.port;
    let line = "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 7000, \
                \"bench\": \"Gobmk\"}";

    // Fire the sweep and pull the plug while it is in flight. The
    // graceful drain must wait for the leader and persist the result.
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    handle.trigger_shutdown();
    let summary = handle.wait();
    drop(stream);
    assert!(summary.drained_clean, "the drain waited out the in-flight sweep");
    assert!(summary.persisted >= 1, "the drained cache was persisted: {summary:?}");
    assert_eq!(summary.failed_cells, 0);

    // The restarted server answers from the warmed cache — no
    // recompute — with the exact same bytes.
    let handle = serve::start(cfg).expect("second server");
    let mut client = Client::connect(handle.port);
    let r = client.request(line);
    assert!(ok(&r), "{r:?}");
    assert_eq!(
        r.get("cached").and_then(json::Json::as_bool),
        Some(true),
        "the restarted server must serve from the persisted cache: {r:?}"
    );
    assert_eq!(
        r.get("bytes").and_then(json::Json::as_str),
        Some(direct_bytes("fig18", 7000, "Gobmk").as_str()),
        "warm-restart bytes are identical to the direct run"
    );
    client.shutdown();
    assert_eq!(handle.wait().failed_cells, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request-scoped deadline rejects politely, frees the slot, and the
/// work still completes in the background and lands in the cache.
#[test]
fn deadline_rejects_politely_and_the_work_still_lands_in_the_cache() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let mut client = Client::connect(handle.port);

    let r = client.request(
        "{\"op\": \"sweep\", \"deadline_ms\": 1, \"experiment\": \"fig19\", \
         \"accesses\": 6000, \"bench\": \"Gobmk\"}",
    );
    assert!(rejected_as(&r, "deadline"), "1ms cannot fit a sweep: {r:?}");
    // The connection survived the rejection.
    assert!(ok(&client.request("{\"op\": \"ping\"}")));

    // The leader kept computing; without a deadline the same request
    // now returns the finished bytes (coalesced or cached).
    let deadline = Instant::now() + Duration::from_secs(30);
    let line = "{\"op\": \"sweep\", \"experiment\": \"fig19\", \"accesses\": 6000, \
                \"bench\": \"Gobmk\"}";
    loop {
        let r = client.request(line);
        if ok(&r) {
            assert_eq!(
                r.get("bytes").and_then(json::Json::as_str),
                Some(direct_bytes("fig19", 6000, "Gobmk").as_str()),
                "the deadline-abandoned work must land intact"
            );
            break;
        }
        assert!(Instant::now() < deadline, "sweep never landed: {r:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    client.shutdown();
    let summary = handle.wait();
    assert!(summary.rejected_deadline >= 1, "{summary:?}");
    assert_eq!(summary.failed_cells, 0, "a deadline miss is not a failed cell");
    assert!(summary.drained_clean);
}

/// Oversized request lines are drained and rejected with a structured
/// `too_large` error instead of a disconnect or an unbounded buffer.
#[test]
fn oversized_lines_get_a_structured_too_large_rejection() {
    let _g = lock();
    let cfg = ServeConfig { max_line_bytes: 64, ..test_config() };
    let handle = serve::start(cfg).expect("server starts");
    let mut client = Client::connect(handle.port);

    let huge = format!(
        "{{\"op\": \"translate\", \"benchmark\": \"{}\"}}",
        "G".repeat(500)
    );
    let r = client.request(&huge);
    assert!(rejected_as(&r, "too_large"), "{r:?}");
    assert!(
        r.get("error").and_then(json::Json::as_str).is_some(),
        "the rejection explains itself"
    );
    // The line was drained, not left half-read: the connection still
    // serves short requests.
    assert!(ok(&client.request("{\"op\": \"ping\"}")));

    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.rejected_too_large, 1);
    assert_eq!(summary.failed_cells, 0);
}

/// Past the queue high-water mark sweeps are shed by priority while
/// ping and stats keep answering.
#[test]
fn overload_sheds_sweeps_first_while_ping_and_stats_survive() {
    let _g = lock();
    // High-water 0: every sweep meets an "overloaded" queue.
    let cfg = ServeConfig { queue_high_water: Some(0), ..test_config() };
    let handle = serve::start(cfg).expect("server starts");
    let mut client = Client::connect(handle.port);

    let r = client.request(
        "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 1000, \
         \"bench\": \"Gobmk\"}",
    );
    assert!(rejected_as(&r, "shed"), "{r:?}");
    // The lightweight ops are never shed…
    assert!(ok(&client.request("{\"op\": \"ping\"}")));
    let stats = client.request("{\"op\": \"stats\"}");
    assert!(ok(&stats));
    assert_eq!(stats.get("rejected_shed").and_then(json::Json::as_u64), Some(1));
    // …and translates still queue (shedding is by op priority).
    let t = client.request(
        "{\"op\": \"translate\", \"benchmark\": \"Gobmk\", \"accesses\": 1000}",
    );
    assert!(ok(&t), "{t:?}");

    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.rejected_shed, 1);
    assert_eq!(summary.sweeps, 0, "a shed sweep never counts as started");
    assert_eq!(summary.failed_cells, 0);
}

/// A retried sweep carrying the same idempotency key is recognized:
/// the response flags the replay and the server serves cached bytes
/// instead of recomputing.
#[test]
fn idempotency_keys_mark_retried_sweeps_as_replays() {
    let _g = lock();
    let handle = serve::start(test_config()).expect("server starts");
    let mut client = Client::connect(handle.port);

    let line = "{\"op\": \"sweep\", \"idem\": \"retry-1\", \"experiment\": \"fig18\", \
                \"accesses\": 1500, \"bench\": \"Gobmk\"}";
    let first = client.request(line);
    assert!(ok(&first), "{first:?}");
    assert_eq!(
        first.get("idem_replayed").and_then(json::Json::as_bool),
        Some(false),
        "a first delivery is not a replay: {first:?}"
    );

    // The "retry": same idem key, same sweep — recognized and served
    // from cache, byte-identical.
    let second = client.request(line);
    assert!(ok(&second));
    assert_eq!(second.get("idem_replayed").and_then(json::Json::as_bool), Some(true));
    assert_eq!(second.get("cached").and_then(json::Json::as_bool), Some(true));
    assert_eq!(
        second.get("bytes").and_then(json::Json::as_str),
        first.get("bytes").and_then(json::Json::as_str),
    );

    // An idem-less request's response never carries the field, so old
    // clients see byte-stable responses.
    let plain = client.request(
        "{\"op\": \"sweep\", \"experiment\": \"fig18\", \"accesses\": 1500, \
         \"bench\": \"Gobmk\"}",
    );
    assert!(plain.get("idem_replayed").is_none(), "{plain:?}");

    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.idem_hits, 1);
    assert_eq!(summary.failed_cells, 0);
}

/// A client that stalls mid-request-line past the slow-client budget
/// is evicted; its slot frees and the server keeps serving others.
#[test]
fn slow_clients_stalled_mid_line_are_evicted() {
    let _g = lock();
    let cfg = ServeConfig { slow_client_ms: 50, ..test_config() };
    let handle = serve::start(cfg).expect("server starts");
    let port = handle.port;

    // Write half a request line, then stall past the budget.
    let mut slow = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    slow.write_all(b"{\"op\": \"pi").expect("partial write");
    slow.flush().unwrap();
    // The eviction notice (or a bare close) arrives once the server's
    // read loop ticks past the budget.
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut tail = String::new();
    let _ = slow.read_to_string(&mut tail); // EOF = evicted
    drop(slow);

    // The server moved on: fresh clients are served normally.
    let mut client = Client::connect(port);
    assert!(ok(&client.request("{\"op\": \"ping\"}")));
    client.shutdown();
    let summary = handle.wait();
    assert_eq!(summary.evicted_slow, 1, "{summary:?}");
    assert_eq!(summary.failed_cells, 0);
}
