//! Binary-level crash/recovery: SIGKILL-equivalent death mid-sweep
//! (via `COLT_CRASH_AFTER_CELLS`, which `abort()`s right after a
//! journal fsync), then `repro ... --resume` must finish the sweep and
//! write byte-identical results to an uninterrupted run.

use std::path::PathBuf;
use std::process::Command;

/// Faults armed in release; rate 0 in debug, where the three prepared
/// fault scenarios dominate the unoptimized runtime. Crash/resume
/// behavior is identical either way, and the `verify.sh` crash smoke
/// covers the faults-armed path with the release binary.
const FAULTS: &str = if cfg!(debug_assertions) {
    "rate=0,window=50,seed=11"
} else {
    "rate=0.3,window=50,seed=11"
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("colt-repro-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repro(dir: &PathBuf, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(dir)
        .args([
            // Tiny access budget: crash/resume byte-identity does not
            // depend on sweep length, and unoptimized test builds run
            // this sweep three times.
            "--accesses",
            "4000",
            "--bench",
            "FastaProt",
            "--faults",
            FAULTS,
            "--jobs",
            "2",
            "pressure",
            "--csv",
        ])
        .args(extra)
        // Keep the child deterministic regardless of the test env.
        .env_remove("COLT_CRASH_AFTER_CELLS")
        .env_remove("COLT_JOBS");
    cmd
}

#[test]
fn killed_sweep_resumes_to_byte_identical_results() {
    // Uninterrupted reference.
    let ref_dir = tmpdir("ref");
    let out = repro(&ref_dir, &[]).output().expect("spawn repro");
    assert!(out.status.success(), "reference run failed: {}", String::from_utf8_lossy(&out.stderr));
    let ref_json = std::fs::read(ref_dir.join("results/BENCH_pressure.json")).unwrap();
    let ref_csv = out.stdout.clone();

    // Crash after the 3rd journaled cell: the process must die (abort,
    // not a clean exit), leaving exactly 3 fsynced records behind and
    // no BENCH_pressure.json.
    let dir = tmpdir("crash");
    let crashed = repro(&dir, &[])
        .env("COLT_CRASH_AFTER_CELLS", "3")
        .output()
        .expect("spawn crashing repro");
    assert!(!crashed.status.success(), "crash injection must kill the run");
    let journal = std::fs::read_to_string(dir.join("results/journal/pressure.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 3, "exactly the fsynced records survive");
    assert!(
        !dir.join("results/BENCH_pressure.json").exists(),
        "no result file may exist after the crash"
    );

    // Resume with the same flags: finishes the sweep and reproduces the
    // reference byte-for-byte (result file and CSV output alike).
    let resumed = repro(&dir, &["--resume"]).output().expect("spawn resuming repro");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let json = std::fs::read(dir.join("results/BENCH_pressure.json")).unwrap();
    assert_eq!(json, ref_json, "resumed BENCH_pressure.json must be byte-identical");
    assert_eq!(resumed.stdout, ref_csv, "resumed CSV output must be byte-identical");
    let final_journal =
        std::fs::read_to_string(dir.join("results/journal/pressure.jsonl")).unwrap();
    assert_eq!(
        final_journal.lines().count(),
        std::fs::read_to_string(ref_dir.join("results/journal/pressure.jsonl"))
            .unwrap()
            .lines()
            .count(),
        "resumed journal must cover the full sweep"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
