//! Property-based tests of the TLB structures' core invariants.

use colt_os_mem::addr::{Pfn, Vpn};
use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
use colt_tlb::coalesce::coalesce_line;
use colt_tlb::config::TlbConfig;
use colt_tlb::entry::{CoalescedRun, RangeEntry};
use colt_tlb::fully_assoc::FullyAssocTlb;
use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};
use colt_tlb::set_assoc::SetAssocTlb;
use colt_quickprop::prelude::*;

/// A random page table over a window of vpns, with runs of contiguity.
fn arbitrary_page_table() -> impl Strategy<Value = PageTable> {
    // Pairs of (run start offset gap, run length); built left to right.
    prop::collection::vec((0u64..6, 1u64..12, prop::bool::ANY), 1..40).prop_map(|segments| {
        let mut pt = PageTable::new();
        let mut vpn = 0x100u64;
        let mut pfn = 0x9000u64;
        for (gap, len, dirty) in segments {
            vpn += gap;
            pfn += gap * 7 + 13; // decorrelate frames between runs
            let flags = if dirty {
                PteFlags::user_data().with(PteFlags::DIRTY)
            } else {
                PteFlags::user_data()
            };
            for i in 0..len {
                pt.map_base(Vpn::new(vpn + i), Pte::new(Pfn::new(pfn + i), flags));
            }
            vpn += len;
            pfn += len;
        }
        pt
    })
}

proptest! {
    /// Whatever the page-table contents, the coalescing logic's run always
    /// contains the requested translation, translates every covered page
    /// exactly as the page table does, and never leaves the cache line.
    #[test]
    fn coalesced_runs_agree_with_the_page_table(pt in arbitrary_page_table()) {
        for (vpn, _pte) in pt.iter_base() {
            let line = pt.pte_line(vpn);
            let run = coalesce_line(&line, vpn).expect("mapped slot must coalesce");
            prop_assert!(run.contains(vpn));
            prop_assert!(run.len <= 8);
            prop_assert!(run.start_vpn >= line.base_vpn);
            prop_assert!(run.end_vpn() <= line.base_vpn.offset(8));
            for v in run.start_vpn.raw()..run.end_vpn().raw() {
                let v = Vpn::new(v);
                let expected = pt.translate(v).expect("covered page must be mapped");
                prop_assert_eq!(run.translate(v), Some(expected.pfn));
                prop_assert_eq!(run.flags, expected.flags);
            }
        }
    }

    /// The coalesced run is *maximal* within the line: the slots
    /// immediately before and after cannot extend it.
    #[test]
    fn coalesced_runs_are_maximal(pt in arbitrary_page_table()) {
        for (vpn, _pte) in pt.iter_base() {
            let line = pt.pte_line(vpn);
            let run = coalesce_line(&line, vpn).unwrap();
            if run.start_vpn > line.base_vpn {
                let before = Vpn::new(run.start_vpn.raw() - 1);
                let extends = pt.translate(before).is_some_and(|t| {
                    t.pfn.is_followed_by(run.base_pfn) && t.flags == run.flags
                        && matches!(t.kind, colt_os_mem::page_table::PageKind::Base)
                });
                prop_assert!(!extends, "run not maximal on the left at {before}");
            }
            let after = run.end_vpn();
            if after < line.base_vpn.offset(8) {
                let last_pfn = run.base_pfn.offset(run.len - 1);
                let extends = pt.translate(after).is_some_and(|t| {
                    last_pfn.is_followed_by(t.pfn) && t.flags == run.flags
                        && matches!(t.kind, colt_os_mem::page_table::PageKind::Base)
                });
                prop_assert!(!extends, "run not maximal on the right at {after}");
            }
        }
    }

    /// A set-associative TLB never returns a wrong translation: whatever
    /// sequence of inserts happens, a hit always reproduces what was
    /// inserted for that vpn.
    #[test]
    fn set_assoc_hits_are_always_correct(
        runs in prop::collection::vec((0u64..512, 1u64..=4), 1..60),
        shift in 0u32..=3,
        probes in prop::collection::vec(0u64..520, 1..60),
    ) {
        let mut tlb = SetAssocTlb::new(32, 4, shift);
        // Ground truth: pfn = vpn + 10_000 for every inserted translation.
        let mut inserted = std::collections::HashSet::new();
        for (start, len) in runs {
            let run = CoalescedRun::new(
                Vpn::new(start),
                Pfn::new(start + 10_000),
                len,
                PteFlags::user_data(),
            );
            if let Some(r) = run.restrict_to_group(Vpn::new(start), shift) {
                tlb.insert(r);
                for v in r.start_vpn.raw()..r.end_vpn().raw() {
                    inserted.insert(v);
                }
            }
        }
        for p in probes {
            if let Some(pfn) = tlb.probe(Vpn::new(p)) {
                prop_assert!(inserted.contains(&p), "hit on never-inserted vpn {p}");
                prop_assert_eq!(pfn.raw(), p + 10_000, "wrong translation for vpn {}", p);
            }
        }
    }

    /// Set-associative occupancy never exceeds ways per set, across any
    /// insert sequence.
    #[test]
    fn set_assoc_capacity_is_respected(
        vpns in prop::collection::vec(0u64..4096, 1..200),
        shift in 0u32..=3,
    ) {
        let mut tlb = SetAssocTlb::new(32, 4, shift);
        for v in vpns {
            tlb.insert(CoalescedRun::single(
                Vpn::new(v),
                Pfn::new(v + 1),
                PteFlags::user_data(),
            ));
            prop_assert!(tlb.occupancy() <= 32);
        }
    }

    /// Fully-associative merging never changes what any vpn translates
    /// to, and occupancy never exceeds capacity.
    #[test]
    fn fa_merging_preserves_translations(
        segments in prop::collection::vec((0u64..2, 1u64..10), 1..30),
    ) {
        let mut tlb = FullyAssocTlb::new(8);
        let mut vpn = 1000u64;
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for (gap, len) in segments {
            vpn += gap;
            let run = CoalescedRun::new(
                Vpn::new(vpn),
                Pfn::new(vpn + 5_000), // single global anchor → merges legal
                len,
                PteFlags::user_data(),
            );
            tlb.insert_coalesced_with_merge(run);
            for v in vpn..vpn + len {
                expected.push((v, v + 5_000));
            }
            vpn += len;
            prop_assert!(tlb.occupancy() <= 8);
        }
        // Every vpn that still hits translates correctly.
        for (v, p) in expected {
            if let Some(pfn) = tlb.probe(Vpn::new(v)) {
                prop_assert_eq!(pfn.raw(), p);
            }
        }
        // Entries never overlap.
        let entries: Vec<_> = tlb.iter().map(RangeEntry::run).collect();
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                prop_assert!(
                    a.end_vpn() <= b.start_vpn || b.end_vpn() <= a.start_vpn,
                    "overlapping FA entries {:?} and {:?}", a, b
                );
            }
        }
    }

    /// End-to-end invariant: for any page table and any access sequence,
    /// every hierarchy mode returns exactly the page table's translation
    /// (TLBs must be transparent), and fills make the missed vpn present.
    #[test]
    fn hierarchies_are_transparent_caches(
        pt in arbitrary_page_table(),
        seed in 0u64..1000,
    ) {
        let mapped: Vec<Vpn> = pt.iter_base().map(|(v, _)| v).collect();
        prop_assume!(!mapped.is_empty());
        for config in [
            TlbConfig::baseline(),
            TlbConfig::colt_sa(),
            TlbConfig::colt_fa(),
            TlbConfig::colt_all(),
        ] {
            let mut tlb = TlbHierarchy::new(config);
            // Deterministic pseudo-random access pattern over mapped vpns.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let vpn = mapped[(state >> 33) as usize % mapped.len()];
                let expected = pt.translate(vpn).expect("accessing mapped page");
                match tlb.lookup(vpn) {
                    Some(hit) => prop_assert_eq!(
                        hit.pfn, expected.pfn,
                        "mode {:?} returned a wrong translation for {}",
                        config.mode, vpn
                    ),
                    None => {
                        tlb.fill(vpn, &WalkFill::Base { line: pt.pte_line(vpn) });
                        prop_assert_eq!(
                            tlb.lookup(vpn).map(|h| h.pfn),
                            Some(expected.pfn),
                            "fill must make {} present", vpn
                        );
                    }
                }
            }
            let s = tlb.stats();
            prop_assert_eq!(s.l1_hits + s.l1_misses, s.accesses);
            prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses);
        }
    }

    /// Coalescing modes never have *more* L2 misses than baseline on
    /// sequential sweeps over contiguous memory (the paper's core claim
    /// in its most favorable setting).
    #[test]
    fn coalescing_wins_on_contiguous_sweeps(pages in 32u64..256) {
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map_base(Vpn::new(0x100 + i), Pte::new(Pfn::new(0x5000 + i), PteFlags::user_data()));
        }
        let run = |config: TlbConfig| {
            let mut tlb = TlbHierarchy::new(config);
            for sweep in 0..3 {
                for i in 0..pages {
                    let vpn = Vpn::new(0x100 + i);
                    if tlb.lookup(vpn).is_none() {
                        tlb.fill(vpn, &WalkFill::Base { line: pt.pte_line(vpn) });
                    }
                    let _ = sweep;
                }
            }
            tlb.stats().l2_misses
        };
        let base = run(TlbConfig::baseline());
        prop_assert!(run(TlbConfig::colt_sa()) <= base);
        prop_assert!(run(TlbConfig::colt_fa()) <= base);
        prop_assert!(run(TlbConfig::colt_all()) <= base);
    }
}

proptest! {
    /// Graceful invalidation removes exactly the victim translation:
    /// every other translation the entry held keeps translating exactly
    /// as before, in both set-associative and fully-associative TLBs.
    #[test]
    fn graceful_invalidation_is_surgical(
        start in 0u64..1000,
        len in 1u64..=8,
        victim_off in 0u64..8,
    ) {
        let victim_off = victim_off % len;
        let run = CoalescedRun::new(
            Vpn::new(start * 8), // group-aligned for shift 3
            Pfn::new(5000 + start * 8),
            len,
            PteFlags::user_data(),
        );
        let victim = run.start_vpn.offset(victim_off);

        let mut sa = SetAssocTlb::new(32, 4, 3);
        sa.insert(run);
        sa.invalidate_graceful(victim);
        let mut fa = FullyAssocTlb::new(8);
        fa.insert(RangeEntry::coalesced(run));
        fa.invalidate_graceful(victim);

        for v in run.start_vpn.raw()..run.end_vpn().raw() {
            let v = Vpn::new(v);
            let expected = if v == victim { None } else { run.translate(v) };
            prop_assert_eq!(sa.probe(v), expected, "SA at {}", v);
            prop_assert_eq!(fa.probe(v), expected, "FA at {}", v);
        }
    }

    /// The coalescing-aware replacement policy never violates capacity
    /// and never produces wrong translations.
    #[test]
    fn coalesced_first_policy_is_safe(
        runs in prop::collection::vec((0u64..256, 1u64..=4), 1..80),
    ) {
        use colt_tlb::replacement::ReplacementPolicy;
        let mut tlb = SetAssocTlb::new(16, 2, 2)
            .with_policy(ReplacementPolicy::SmallestCoalescedFirst);
        for (start, len) in runs {
            let run = CoalescedRun::new(
                Vpn::new(start),
                Pfn::new(start + 7000),
                len,
                PteFlags::user_data(),
            );
            if let Some(r) = run.restrict_to_group(Vpn::new(start), 2) {
                tlb.insert(r);
            }
            prop_assert!(tlb.occupancy() <= 16);
        }
        for v in 0..260u64 {
            if let Some(pfn) = tlb.probe(Vpn::new(v)) {
                prop_assert_eq!(pfn.raw(), v + 7000);
            }
        }
    }

    /// Masked coalescing with DIRTY ignored yields runs at least as long
    /// as strict coalescing, never longer than the line, and always
    /// correct.
    #[test]
    fn masked_coalescing_dominates_strict(dirty_mask in 0u8..=255) {
        use colt_tlb::coalesce::coalesce_line_masked;
        let mut pt = PageTable::new();
        for i in 0..8u64 {
            let flags = if dirty_mask & (1 << i) != 0 {
                PteFlags::user_data().with(PteFlags::DIRTY)
            } else {
                PteFlags::user_data()
            };
            pt.map_base(Vpn::new(64 + i), Pte::new(Pfn::new(900 + i), flags));
        }
        let line = pt.pte_line(Vpn::new(64));
        for i in 0..8u64 {
            let vpn = Vpn::new(64 + i);
            let strict = coalesce_line(&line, vpn).unwrap();
            let masked = coalesce_line_masked(&line, vpn, PteFlags::DIRTY).unwrap();
            prop_assert!(masked.len >= strict.len);
            prop_assert_eq!(masked.len, 8, "all frames contiguous, DIRTY tolerated");
            for v in masked.start_vpn.raw()..masked.end_vpn().raw() {
                let v = Vpn::new(v);
                prop_assert_eq!(masked.translate(v), Some(pt.translate(v).unwrap().pfn));
            }
        }
    }
}
