//! Replacement policies for the TLB structures.
//!
//! The paper assumes plain LRU everywhere but explicitly flags richer
//! policies as future work: "there may be benefits in prioritizing
//! entries with different coalescing amounts differently" (§4.1.5) and
//! "due to its smaller size, we suspect smarter replacement policies
//! will be even more effective" for the fully-associative TLB (§4.2.3).
//! [`ReplacementPolicy::SmallestCoalescedFirst`] implements that idea:
//! when a victim is needed, prefer the entry covering the fewest
//! translations (ties broken by recency), so high-reach entries survive.

/// Victim-selection policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used entry (the paper's baseline).
    #[default]
    Lru,
    /// Evict the least-recently-used entry among those with the smallest
    /// coalescing length — the §4.1.5 future-work policy.
    SmallestCoalescedFirst,
}

impl ReplacementPolicy {
    /// Picks the victim index from `entries`, described by
    /// `(lru_rank, coalesced_len)` pairs where **higher** `lru_rank`
    /// means staler (0 = most recently used).
    ///
    /// # Panics
    /// Panics on an empty candidate list.
    pub fn choose_victim(self, entries: &[(usize, u64)]) -> usize {
        assert!(!entries.is_empty(), "victim selection needs candidates");
        match self {
            ReplacementPolicy::Lru => {
                entries
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(rank, _))| rank)
                    .map(|(i, _)| i)
                    .expect("non-empty")
            }
            ReplacementPolicy::SmallestCoalescedFirst => {
                entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(rank, len))| (len, usize::MAX - rank))
                    .map(|(i, _)| i)
                    .expect("non-empty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_stalest() {
        // (lru_rank, len): index 2 is stalest.
        let entries = [(0, 8), (1, 1), (3, 4), (2, 2)];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&entries), 2);
    }

    #[test]
    fn coalesced_first_prefers_small_entries() {
        // Singleton at index 1 goes first even though index 2 is staler.
        let entries = [(0, 8), (1, 1), (3, 4), (2, 2)];
        assert_eq!(
            ReplacementPolicy::SmallestCoalescedFirst.choose_victim(&entries),
            1
        );
    }

    #[test]
    fn coalesced_first_breaks_ties_by_staleness() {
        // Two singletons: the staler one (rank 3, index 2) goes.
        let entries = [(0, 4), (1, 1), (3, 1)];
        assert_eq!(
            ReplacementPolicy::SmallestCoalescedFirst.choose_victim(&entries),
            2
        );
    }

    #[test]
    #[should_panic(expected = "candidates")]
    fn empty_candidates_panic() {
        ReplacementPolicy::Lru.choose_victim(&[]);
    }
}
