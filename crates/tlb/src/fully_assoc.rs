//! Fully-associative range TLB (CoLT-FA, paper §4.2 / Figure 5).
//!
//! The small fully-associative structure processors dedicate to
//! superpages, extended with range-check lookup so each entry can cover
//! an arbitrary-length coalesced run (up to 1024 pages). On fill, a newly
//! coalesced entry may merge with resident entries that continue its run
//! (§4.2.1 step 5), growing reach without extra entries.

use crate::entry::{CoalescedRun, RangeEntry, RangeKind};
use crate::replacement::ReplacementPolicy;
use colt_os_mem::addr::{Asid, Pfn, Vpn};
use colt_os_mem::page_table::PteFlags;

/// A hit in the fully-associative TLB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaHit {
    /// The translated frame.
    pub pfn: Pfn,
    /// Attribute bits.
    pub flags: PteFlags,
    /// Length of the hit range (512 for superpages).
    pub entry_len: u64,
    /// Whether the hit entry was a superpage.
    pub superpage: bool,
}

/// Per-structure counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Fills absorbed by resident-entry merging.
    pub merges: u64,
    /// Entries evicted by replacement.
    pub evictions: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
}

/// The fully-associative range TLB with LRU replacement.
///
/// ```
/// use colt_tlb::fully_assoc::FullyAssocTlb;
/// use colt_tlb::entry::{CoalescedRun, RangeEntry};
/// use colt_os_mem::addr::{Pfn, Vpn};
/// use colt_os_mem::page_table::PteFlags;
/// let mut tlb = FullyAssocTlb::new(8);
/// let run = CoalescedRun::new(Vpn::new(100), Pfn::new(700), 20, PteFlags::user_data());
/// tlb.insert(RangeEntry::coalesced(run));
/// assert_eq!(tlb.lookup(Vpn::new(119)).unwrap().pfn, Pfn::new(719));
/// ```
#[derive(Clone, Debug)]
pub struct FullyAssocTlb {
    entries: Vec<RangeEntry>, // MRU-first
    capacity: usize,
    policy: ReplacementPolicy,
    stats: FaStats,
}

impl FullyAssocTlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must hold at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            policy: ReplacementPolicy::Lru,
            stats: FaStats::default(),
        }
    }

    /// Sets the victim-selection policy (§4.2.3 future work).
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaStats {
        self.stats
    }

    /// Looks up `vpn` by range check against every entry, updating LRU
    /// order and counters. Frequently accessed superpage entries thus
    /// stay at the head of the LRU list, which is what keeps them from
    /// being evicted by coalesced traffic (§4.2.1).
    pub fn lookup(&mut self, vpn: Vpn) -> Option<FaHit> {
        self.lookup_tagged(vpn, Asid(0))
    }

    /// ASID-selective lookup (SMP tagged mode): only entries tagged
    /// `asid` can hit.
    pub fn lookup_tagged(&mut self, vpn: Vpn, asid: Asid) -> Option<FaHit> {
        if let Some(pos) =
            self.entries.iter().position(|e| e.asid() == asid && e.lookup(vpn).is_some())
        {
            let entry = self.entries.remove(pos);
            let hit = FaHit {
                pfn: entry.lookup(vpn).expect("position found by lookup"),
                flags: entry.flags(),
                entry_len: entry.run().len,
                superpage: entry.kind() == RangeKind::Superpage,
            };
            self.entries.insert(0, entry);
            self.stats.hits += 1;
            return Some(hit);
        }
        self.stats.misses += 1;
        None
    }

    /// Batched lookup: translates every VPN of `vpns` in order,
    /// appending one result per VPN to `out`. State transitions (LRU
    /// promotion, hit/miss counters) are byte-identical to the same
    /// sequence of [`FullyAssocTlb::lookup`] calls.
    pub fn lookup_batch(&mut self, vpns: &[Vpn], out: &mut Vec<Option<FaHit>>) {
        self.lookup_batch_tagged(vpns, Asid(0), out);
    }

    /// Tagged variant of [`FullyAssocTlb::lookup_batch`].
    pub fn lookup_batch_tagged(&mut self, vpns: &[Vpn], asid: Asid, out: &mut Vec<Option<FaHit>>) {
        out.reserve(vpns.len());
        for &vpn in vpns {
            out.push(self.lookup_tagged(vpn, asid));
        }
    }

    /// Checks for a hit without touching LRU or counters (any ASID).
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        self.entries.iter().find_map(|e| e.lookup(vpn))
    }

    /// ASID-selective probe: no LRU or counter side effects.
    pub fn probe_tagged(&self, vpn: Vpn, asid: Asid) -> Option<Pfn> {
        self.entries.iter().filter(|e| e.asid() == asid).find_map(|e| e.lookup(vpn))
    }

    /// Inserts an entry, evicting the LRU entry when full. Returns the
    /// evicted entry, if any.
    pub fn insert(&mut self, entry: RangeEntry) -> Option<RangeEntry> {
        self.stats.insertions += 1;
        let evicted = if self.entries.len() == self.capacity {
            self.stats.evictions += 1;
            let candidates: Vec<(usize, u64)> = self
                .entries
                .iter()
                .enumerate()
                .map(|(rank, e)| (rank, e.run().len))
                .collect();
            let victim = self.policy.choose_victim(&candidates);
            Some(self.entries.remove(victim))
        } else {
            None
        };
        self.entries.insert(0, entry);
        evicted
    }

    /// Gracefully uncoalesces on invalidation: coalesced ranges covering
    /// `vpn` lose only the victim translation, splitting into remnants;
    /// superpage entries are still flushed whole (a 2MB invalidation is a
    /// 2MB invalidation). Returns the number of entries affected.
    pub fn invalidate_graceful(&mut self, vpn: Vpn) -> usize {
        self.invalidate_graceful_filtered(vpn, None)
    }

    /// Graceful invalidation restricted to entries tagged `asid`.
    pub fn invalidate_graceful_asid(&mut self, vpn: Vpn, asid: Asid) -> usize {
        self.invalidate_graceful_filtered(vpn, Some(asid))
    }

    fn invalidate_graceful_filtered(&mut self, vpn: Vpn, filter: Option<Asid>) -> usize {
        let mut affected = 0;
        let mut pos = 0;
        while pos < self.entries.len() {
            if filter.is_some_and(|a| self.entries[pos].asid() != a)
                || self.entries[pos].lookup(vpn).is_none()
            {
                pos += 1;
                continue;
            }
            affected += 1;
            let entry = self.entries.remove(pos);
            if entry.kind() == RangeKind::Superpage {
                continue;
            }
            let (left, right) = entry.run().split_at(vpn).expect("lookup hit");
            let mut insert_at = pos;
            for remnant in [left, right].into_iter().flatten() {
                if self.entries.len() >= self.capacity {
                    // Splitting can overflow a full structure: evict per
                    // policy rather than silently dropping a still-valid
                    // remnant, but never victimise a remnant just
                    // re-inserted (ranks `pos..insert_at`).
                    let candidates: Vec<(usize, u64)> = self
                        .entries
                        .iter()
                        .enumerate()
                        .filter(|(rank, _)| !(pos..insert_at).contains(rank))
                        .map(|(rank, e)| (rank, e.run().len))
                        .collect();
                    if candidates.is_empty() {
                        continue; // capacity-1 structure already holds a remnant
                    }
                    let victim = candidates[self.policy.choose_victim(&candidates)].0;
                    self.stats.evictions += 1;
                    self.entries.remove(victim);
                    if victim < insert_at {
                        insert_at -= 1;
                        if victim < pos {
                            pos -= 1;
                        }
                    }
                }
                self.entries.insert(
                    insert_at.min(self.entries.len()),
                    RangeEntry::coalesced_tagged(remnant, entry.asid()),
                );
                insert_at += 1;
            }
        }
        self.stats.invalidations += affected as u64;
        affected
    }

    /// Inserts a coalesced run, first merging it with any resident
    /// coalesced entries it extends (§4.2.1: the scan happens while the
    /// requested entry returns to the pipeline, so it is off the critical
    /// path). Chained merges are applied until a fixpoint, since the new
    /// run can bridge two residents.
    ///
    /// Returns the evicted entry if insertion displaced one.
    pub fn insert_coalesced_with_merge(&mut self, run: CoalescedRun) -> Option<RangeEntry> {
        self.insert_coalesced_with_merge_tagged(run, Asid(0))
    }

    /// Tagged variant of [`FullyAssocTlb::insert_coalesced_with_merge`]:
    /// only same-ASID residents are merge candidates, and the final entry
    /// carries the tag.
    pub fn insert_coalesced_with_merge_tagged(
        &mut self,
        run: CoalescedRun,
        asid: Asid,
    ) -> Option<RangeEntry> {
        let mut acc = run;
        loop {
            let mut merged_any = false;
            let mut pos = 0;
            while pos < self.entries.len() {
                if self.entries[pos].asid() == asid {
                    if let Some(merged) = self.entries[pos].try_merge(&acc) {
                        self.entries.remove(pos);
                        acc = merged.run();
                        self.stats.merges += 1;
                        merged_any = true;
                        continue;
                    }
                }
                pos += 1;
            }
            if !merged_any {
                break;
            }
        }
        self.insert(RangeEntry::coalesced_tagged(acc, asid))
    }

    /// Invalidates every entry covering `vpn` (whole ranges are flushed,
    /// §4.2.3). Returns the number removed.
    pub fn invalidate(&mut self, vpn: Vpn) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.lookup(vpn).is_none());
        let removed = before - self.entries.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Invalidates entries covering `vpn` that are tagged `asid` (remote
    /// shootdown in SMP tagged mode). Returns the number removed.
    pub fn invalidate_asid(&mut self, vpn: Vpn, asid: Asid) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.asid() != asid || e.lookup(vpn).is_none());
        let removed = before - self.entries.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Flushes the whole TLB.
    pub fn flush(&mut self) {
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Flushes only entries tagged `asid`. Returns the number removed.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.asid() != asid);
        let removed = before - self.entries.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Total pages covered by live entries.
    pub fn covered_pages(&self) -> u64 {
        self.entries.iter().map(|e| e.run().len).sum()
    }

    /// Iterates live entries, MRU first.
    pub fn iter(&self) -> impl Iterator<Item = &RangeEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    fn run(v: u64, p: u64, len: u64) -> CoalescedRun {
        CoalescedRun::new(Vpn::new(v), Pfn::new(p), len, flags())
    }

    #[test]
    fn range_lookup_hits_anywhere_in_run() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::coalesced(run(100, 700, 20)));
        assert_eq!(tlb.lookup(Vpn::new(100)).unwrap().pfn, Pfn::new(700));
        assert_eq!(tlb.lookup(Vpn::new(119)).unwrap().pfn, Pfn::new(719));
        assert!(tlb.lookup(Vpn::new(120)).is_none());
        assert_eq!(tlb.stats().hits, 2);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut tlb = FullyAssocTlb::new(2);
        tlb.insert(RangeEntry::coalesced(run(0, 0, 4)));
        tlb.insert(RangeEntry::coalesced(run(100, 100, 4)));
        tlb.lookup(Vpn::new(1)); // 0-run is MRU
        let evicted = tlb.insert(RangeEntry::coalesced(run(200, 200, 4))).unwrap();
        assert_eq!(evicted.run().start_vpn, Vpn::new(100));
    }

    #[test]
    fn frequently_used_superpages_resist_eviction() {
        // §4.2.1: hot superpages stay at the LRU head even when coalesced
        // entries stream through a tiny structure.
        let mut tlb = FullyAssocTlb::new(2);
        tlb.insert(RangeEntry::superpage(Vpn::new(512), Pfn::new(1024), flags()));
        for i in 0..10 {
            tlb.lookup(Vpn::new(512 + i)); // keep the superpage hot
            tlb.insert_coalesced_with_merge(run(10_000 + 100 * i, 5_000 + 100 * i, 8));
        }
        assert!(
            tlb.probe(Vpn::new(512)).is_some(),
            "hot superpage survived the coalesced stream"
        );
    }

    #[test]
    fn resident_merge_extends_runs() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert_coalesced_with_merge(run(100, 700, 8));
        tlb.insert_coalesced_with_merge(run(108, 708, 8));
        assert_eq!(tlb.occupancy(), 1, "adjacent runs merged");
        assert_eq!(tlb.covered_pages(), 16);
        assert_eq!(tlb.probe(Vpn::new(115)), Some(Pfn::new(715)));
        assert_eq!(tlb.stats().merges, 1);
    }

    #[test]
    fn merge_bridges_two_residents() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert_coalesced_with_merge(run(100, 700, 8)); // 100..108
        tlb.insert_coalesced_with_merge(run(116, 716, 8)); // 116..124
        assert_eq!(tlb.occupancy(), 2);
        // The middle run bridges both.
        tlb.insert_coalesced_with_merge(run(108, 708, 8)); // 108..116
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.covered_pages(), 24);
        assert_eq!(tlb.probe(Vpn::new(123)), Some(Pfn::new(723)));
    }

    #[test]
    fn merge_skips_inconsistent_neighbors() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert_coalesced_with_merge(run(100, 700, 8));
        tlb.insert_coalesced_with_merge(run(108, 900, 8)); // anchor mismatch
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn superpages_are_not_merge_targets() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::superpage(Vpn::new(512), Pfn::new(512), flags()));
        // Run physically continuing the superpage still does not merge.
        tlb.insert_coalesced_with_merge(run(1024, 1024, 4));
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn invalidate_removes_covering_ranges() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::coalesced(run(100, 700, 20)));
        tlb.insert(RangeEntry::coalesced(run(300, 900, 4)));
        assert_eq!(tlb.invalidate(Vpn::new(110)), 1);
        assert!(tlb.probe(Vpn::new(100)).is_none(), "whole range flushed");
        assert!(tlb.probe(Vpn::new(301)).is_some());
    }

    #[test]
    fn flush_and_occupancy() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::coalesced(run(0, 0, 4)));
        tlb.insert(RangeEntry::coalesced(run(10, 10, 4)));
        assert_eq!(tlb.occupancy(), 2);
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(tlb.probe(Vpn::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = FullyAssocTlb::new(0);
    }

    #[test]
    fn graceful_invalidation_splits_ranges() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::coalesced(run(100, 700, 20)));
        assert_eq!(tlb.invalidate_graceful(Vpn::new(110)), 1);
        assert_eq!(tlb.probe(Vpn::new(109)), Some(Pfn::new(709)));
        assert_eq!(tlb.probe(Vpn::new(110)), None);
        assert_eq!(tlb.probe(Vpn::new(111)), Some(Pfn::new(711)));
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn graceful_mid_split_when_full_keeps_both_remnants() {
        // Regression: a full structure used to drop the second remnant of
        // a mid-run split silently instead of evicting per policy.
        let mut tlb = FullyAssocTlb::new(2);
        tlb.insert(RangeEntry::coalesced(run(100, 700, 3)));
        tlb.insert(RangeEntry::coalesced(run(200, 900, 1)));
        assert_eq!(tlb.invalidate_graceful(Vpn::new(101)), 1);
        assert_eq!(tlb.probe(Vpn::new(100)), Some(Pfn::new(700)));
        assert_eq!(tlb.probe(Vpn::new(101)), None, "victim gone");
        assert_eq!(
            tlb.probe(Vpn::new(102)),
            Some(Pfn::new(702)),
            "second remnant must survive a full structure"
        );
        assert_eq!(tlb.probe(Vpn::new(200)), None, "LRU entry evicted to make room");
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn graceful_mid_split_in_capacity_one_keeps_first_remnant_only() {
        let mut tlb = FullyAssocTlb::new(1);
        tlb.insert(RangeEntry::coalesced(run(100, 700, 3)));
        tlb.invalidate_graceful(Vpn::new(101));
        assert_eq!(tlb.probe(Vpn::new(100)), Some(Pfn::new(700)));
        assert_eq!(tlb.probe(Vpn::new(101)), None);
        assert_eq!(tlb.probe(Vpn::new(102)), None, "no slot for the sibling");
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.stats().evictions, 0);
    }

    #[test]
    fn graceful_invalidation_flushes_whole_superpages() {
        let mut tlb = FullyAssocTlb::new(4);
        tlb.insert(RangeEntry::superpage(Vpn::new(512), Pfn::new(512), flags()));
        assert_eq!(tlb.invalidate_graceful(Vpn::new(600)), 1);
        assert_eq!(tlb.occupancy(), 0, "superpages cannot uncoalesce");
    }

    #[test]
    fn coalesced_first_replacement_in_fa() {
        use crate::replacement::ReplacementPolicy;
        let mut tlb =
            FullyAssocTlb::new(2).with_policy(ReplacementPolicy::SmallestCoalescedFirst);
        tlb.insert(RangeEntry::coalesced(run(0, 0, 64)));
        tlb.insert(RangeEntry::coalesced(run(200, 200, 2)));
        tlb.insert(RangeEntry::coalesced(run(400, 400, 8)));
        assert!(tlb.probe(Vpn::new(10)).is_some(), "64-page range survives");
        assert!(tlb.probe(Vpn::new(200)).is_none(), "2-page range evicted");
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut tlb = FullyAssocTlb::new(2);
        tlb.insert(RangeEntry::coalesced(run(0, 0, 4)));
        tlb.insert(RangeEntry::coalesced(run(100, 100, 4)));
        tlb.probe(Vpn::new(0));
        let evicted = tlb.insert(RangeEntry::coalesced(run(200, 200, 4))).unwrap();
        assert_eq!(evicted.run().start_vpn, Vpn::new(0), "probe must not promote");
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let vpns: Vec<Vpn> = [100, 119, 120, 303, 100, 999].map(Vpn::new).to_vec();
        let mut seq = FullyAssocTlb::new(4);
        seq.insert(RangeEntry::coalesced(run(100, 700, 20)));
        seq.insert(RangeEntry::coalesced(run(300, 900, 4)));
        let mut batched = seq.clone();
        let expected: Vec<Option<FaHit>> = vpns.iter().map(|&v| seq.lookup(v)).collect();
        let mut got = Vec::new();
        batched.lookup_batch(&vpns, &mut got);
        assert_eq!(got, expected);
        assert_eq!(batched.stats(), seq.stats(), "counters and LRU evolve identically");
    }
}
