//! # colt-tlb — TLB structures and CoLT coalescing logic
//!
//! The paper's primary contribution ("CoLT: Coalesced Large-Reach TLBs",
//! MICRO 2012): hardware that coalesces multiple contiguous
//! virtual-to-physical translations into single TLB entries, exploiting
//! the intermediate page-allocation contiguity that OS buddy allocation,
//! memory compaction, and THS naturally generate.
//!
//! * [`entry`] — coalesced runs, valid-bitmap SA entries, range entries,
//! * [`coalesce`] — the per-cache-line coalescing logic (§4.1.4),
//! * [`set_assoc`] — set-associative TLBs with CoLT-SA's shifted
//!   indexing (§4.1.2),
//! * [`fully_assoc`] — the fully-associative range TLB of CoLT-FA (§4.2),
//! * [`config`] / [`hierarchy`] — the four hierarchy flavors: Baseline,
//!   CoLT-SA, CoLT-FA, CoLT-All (§4, Figures 4–6),
//! * [`stats`] — miss accounting as the paper reports it (§7.1.1).
//!
//! ## Quick example
//!
//! ```
//! use colt_tlb::{config::TlbConfig, hierarchy::{TlbHierarchy, WalkFill}};
//! use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
//! use colt_os_mem::addr::{Pfn, Vpn};
//!
//! // Four contiguous translations (vpn 8..12 → pfn 100..104).
//! let mut pt = PageTable::new();
//! for i in 0..4 {
//!     pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), PteFlags::user_data()));
//! }
//!
//! let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
//! assert!(tlb.lookup(Vpn::new(8)).is_none());                  // cold miss
//! tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
//! assert!(tlb.lookup(Vpn::new(11)).is_some());                 // coalesced hit
//! ```

pub mod coalesce;
pub mod config;
pub mod entry;
pub mod fully_assoc;
pub mod hierarchy;
pub mod prefetch;
pub mod replacement;
pub mod set_assoc;
pub mod stats;

pub use config::{ColtMode, TlbConfig};
pub use entry::CoalescedRun;
pub use hierarchy::{TlbHierarchy, TlbHit, TlbLevel, WalkFill};
pub use stats::{pct_misses_eliminated, HierarchyStats};
