//! TLB entry types: coalesced runs, set-associative entries with valid
//! bitmaps (CoLT-SA, paper §4.1.3 / Figure 4), and fully-associative
//! range entries (CoLT-FA, §4.2.2 / Figure 5).

use colt_os_mem::addr::{Asid, Pfn, Vpn, SUPERPAGE_PAGES};
use colt_os_mem::page_table::PteFlags;

/// The maximum coalescing length a CoLT-FA range entry can record. The
/// paper uses a 5-bit coalescing-length field "as this captures a
/// contiguity of 1024 pages" (§4.2.2).
pub const MAX_RANGE_LEN: u64 = 1024;

/// A contiguous run of translations: virtual pages
/// `start_vpn .. start_vpn + len` map to physical frames
/// `base_pfn .. base_pfn + len` with identical attributes.
///
/// This is both what the coalescing logic produces from a PTE cache line
/// and the payload of every coalesced TLB entry.
///
/// ```
/// use colt_tlb::entry::CoalescedRun;
/// use colt_os_mem::addr::{Pfn, Vpn};
/// use colt_os_mem::page_table::PteFlags;
/// let run = CoalescedRun::new(Vpn::new(8), Pfn::new(100), 4, PteFlags::user_data());
/// assert_eq!(run.translate(Vpn::new(10)), Some(Pfn::new(102)));
/// assert_eq!(run.translate(Vpn::new(12)), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CoalescedRun {
    /// First virtual page covered.
    pub start_vpn: Vpn,
    /// Physical frame of `start_vpn`.
    pub base_pfn: Pfn,
    /// Number of coalesced translations (≥ 1).
    pub len: u64,
    /// Shared attribute bits (one set per coalesced entry, §4.1.5).
    pub flags: PteFlags,
}

impl CoalescedRun {
    /// Creates a run.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn new(start_vpn: Vpn, base_pfn: Pfn, len: u64, flags: PteFlags) -> Self {
        assert!(len > 0, "a run covers at least one translation");
        Self { start_vpn, base_pfn, len, flags }
    }

    /// A single (uncoalesced) translation.
    pub fn single(vpn: Vpn, pfn: Pfn, flags: PteFlags) -> Self {
        Self::new(vpn, pfn, 1, flags)
    }

    /// One-past-the-end virtual page.
    pub fn end_vpn(&self) -> Vpn {
        self.start_vpn.offset(self.len)
    }

    /// True when `vpn` is covered (the CoLT-FA range check:
    /// `base VPN <= request VPN <= base VPN + coal. length`, Figure 5).
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start_vpn && vpn < self.end_vpn()
    }

    /// Translates `vpn` if covered: the PPN-generation logic subtracts the
    /// base virtual page and adds the stored base physical page (§4.2.2).
    pub fn translate(&self, vpn: Vpn) -> Option<Pfn> {
        if !self.contains(vpn) {
            return None;
        }
        let delta = vpn.distance_from(self.start_vpn).expect("contains checked");
        Some(self.base_pfn.offset(delta))
    }

    /// True when the run lies entirely within one aligned group of
    /// `2^shift` virtual pages — the constraint CoLT-SA's modified set
    /// indexing imposes (§4.1.2).
    pub fn fits_group(&self, shift: u32) -> bool {
        let last = Vpn::new(self.end_vpn().raw() - 1);
        self.start_vpn.align_down(shift) == last.align_down(shift)
    }

    /// The aligned group number (`vpn >> shift`) the run belongs to.
    ///
    /// # Panics
    /// Panics if the run spans multiple groups.
    pub fn group(&self, shift: u32) -> u64 {
        assert!(self.fits_group(shift), "run spans multiple groups for shift {shift}");
        self.start_vpn.raw() >> shift
    }

    /// Restricts the run to the aligned `2^shift` group containing `vpn`,
    /// returning the sub-run (which always still contains `vpn` when the
    /// original did).
    pub fn restrict_to_group(&self, vpn: Vpn, shift: u32) -> Option<CoalescedRun> {
        if !self.contains(vpn) {
            return None;
        }
        let group_start = vpn.align_down(shift);
        let group_end = group_start.offset(1 << shift);
        let start = self.start_vpn.max(group_start);
        let end = self.end_vpn().min(group_end);
        let len = end.distance_from(start).expect("non-empty intersection");
        let delta = start.distance_from(self.start_vpn).expect("start within run");
        Some(CoalescedRun::new(start, self.base_pfn.offset(delta), len, self.flags))
    }

    /// Splits the run around `vpn`, returning the (possibly empty) left
    /// and right remnants — the *graceful uncoalescing* of §4.1.5's
    /// future work: instead of flushing a whole coalesced entry on an
    /// invalidation, only the victim translation is lost.
    ///
    /// Returns `None` when `vpn` is not covered (nothing to split).
    pub fn split_at(&self, vpn: Vpn) -> Option<(Option<CoalescedRun>, Option<CoalescedRun>)> {
        if !self.contains(vpn) {
            return None;
        }
        let left_len = vpn.distance_from(self.start_vpn).expect("contains checked");
        let right_len = self.len - left_len - 1;
        let left = (left_len > 0)
            .then(|| CoalescedRun::new(self.start_vpn, self.base_pfn, left_len, self.flags));
        let right = (right_len > 0).then(|| {
            CoalescedRun::new(
                vpn.next(),
                self.base_pfn.offset(left_len + 1),
                right_len,
                self.flags,
            )
        });
        Some((left, right))
    }

    /// Merges two runs when their union is itself one contiguous,
    /// attribute-consistent run (overlapping or exactly adjacent, with
    /// agreeing translations). Used by CoLT-FA's resident-entry merging
    /// (§4.2.1 step 5) and by set-associative insertion.
    pub fn try_union(&self, other: &CoalescedRun) -> Option<CoalescedRun> {
        if self.flags != other.flags {
            return None;
        }
        // Translation anchors must agree: pfn(v) = anchor + v for both.
        let anchor_a = self.base_pfn.raw() as i128 - self.start_vpn.raw() as i128;
        let anchor_b = other.base_pfn.raw() as i128 - other.start_vpn.raw() as i128;
        if anchor_a != anchor_b {
            return None;
        }
        // Union must be contiguous: ranges touch or overlap.
        if self.end_vpn() < other.start_vpn || other.end_vpn() < self.start_vpn {
            return None;
        }
        let start = self.start_vpn.min(other.start_vpn);
        let end = self.end_vpn().max(other.end_vpn());
        let len = end.distance_from(start).expect("end >= start");
        if len > MAX_RANGE_LEN {
            return None;
        }
        let base = if start == self.start_vpn { self.base_pfn } else { other.base_pfn };
        Some(CoalescedRun::new(start, base, len, self.flags))
    }
}

/// An entry of a (possibly coalescing) set-associative TLB. The hardware
/// form (Figure 4) is tag bits + one valid bit per slot + base PPN +
/// shared attributes; because coalesced runs are contiguous, that is
/// exactly a [`CoalescedRun`] confined to one index group, which is how we
/// store it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SaEntry {
    run: CoalescedRun,
    asid: Asid,
}

impl SaEntry {
    /// Wraps a run, checking it fits a single `2^shift` index group.
    /// The entry is untagged (ASID 0 — the shared global tag used when
    /// the hierarchy runs in full-flush mode).
    ///
    /// # Panics
    /// Panics when the run crosses a group boundary — hardware could not
    /// represent it in one entry.
    pub fn new(run: CoalescedRun, shift: u32) -> Self {
        Self::new_tagged(run, shift, Asid(0))
    }

    /// Wraps a run with an explicit ASID tag (SMP tagged mode).
    ///
    /// # Panics
    /// Panics when the run crosses a group boundary.
    pub fn new_tagged(run: CoalescedRun, shift: u32, asid: Asid) -> Self {
        assert!(
            run.fits_group(shift),
            "run {run:?} does not fit one 2^{shift} group"
        );
        Self { run, asid }
    }

    /// The address-space tag (ASID 0 in untagged mode).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The underlying run.
    pub fn run(&self) -> CoalescedRun {
        self.run
    }

    /// The group number (tag + index bits) for a TLB with `2^shift`-page
    /// groups.
    pub fn group(&self, shift: u32) -> u64 {
        self.run.group(shift)
    }

    /// The valid bitmap over the group's slots (bit `i` = slot `i` holds a
    /// translation), as the hardware would store it.
    pub fn valid_bits(&self, shift: u32) -> u8 {
        let first = (self.run.start_vpn.raw() & ((1 << shift) - 1)) as u32;
        let mut bits = 0u8;
        for i in 0..self.run.len as u32 {
            bits |= 1 << (first + i);
        }
        bits
    }

    /// Looks up `vpn`: tag/group match, valid-bit select, then PPN
    /// generation (base PPN + distance from the first set valid bit,
    /// §4.1.3 steps a/b).
    pub fn lookup(&self, vpn: Vpn) -> Option<Pfn> {
        self.run.translate(vpn)
    }

    /// Shared attribute bits.
    pub fn flags(&self) -> PteFlags {
        self.run.flags
    }

    /// Number of coalesced translations.
    pub fn coalesced_len(&self) -> u64 {
        self.run.len
    }
}

/// What a fully-associative entry holds: a coalesced range or a superpage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RangeKind {
    /// A CoLT coalesced range of base pages.
    Coalesced,
    /// A 2MB superpage entry (the structure's original occupant).
    Superpage,
}

/// An entry of the fully-associative (superpage) TLB: base VPN tag,
/// coalescing length, base PPN, shared attributes (Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RangeEntry {
    run: CoalescedRun,
    kind: RangeKind,
    asid: Asid,
}

impl RangeEntry {
    /// A coalesced range entry, untagged (ASID 0).
    ///
    /// # Panics
    /// Panics if the run exceeds [`MAX_RANGE_LEN`].
    pub fn coalesced(run: CoalescedRun) -> Self {
        Self::coalesced_tagged(run, Asid(0))
    }

    /// A coalesced range entry with an explicit ASID tag.
    ///
    /// # Panics
    /// Panics if the run exceeds [`MAX_RANGE_LEN`].
    pub fn coalesced_tagged(run: CoalescedRun, asid: Asid) -> Self {
        assert!(run.len <= MAX_RANGE_LEN, "range length field overflow");
        Self { run, kind: RangeKind::Coalesced, asid }
    }

    /// A superpage entry covering 512 aligned pages, untagged (ASID 0).
    ///
    /// # Panics
    /// Panics if `base_vpn` or `base_pfn` is not 512-page aligned.
    pub fn superpage(base_vpn: Vpn, base_pfn: Pfn, flags: PteFlags) -> Self {
        Self::superpage_tagged(base_vpn, base_pfn, flags, Asid(0))
    }

    /// A superpage entry with an explicit ASID tag.
    ///
    /// # Panics
    /// Panics if `base_vpn` or `base_pfn` is not 512-page aligned.
    pub fn superpage_tagged(base_vpn: Vpn, base_pfn: Pfn, flags: PteFlags, asid: Asid) -> Self {
        assert!(base_vpn.is_aligned(9) && base_pfn.is_aligned(9), "superpage misaligned");
        Self {
            run: CoalescedRun::new(base_vpn, base_pfn, SUPERPAGE_PAGES, flags),
            kind: RangeKind::Superpage,
            asid,
        }
    }

    /// The address-space tag (ASID 0 in untagged mode).
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The covered run.
    pub fn run(&self) -> CoalescedRun {
        self.run
    }

    /// Coalesced range or superpage.
    pub fn kind(&self) -> RangeKind {
        self.kind
    }

    /// Range-check lookup (Figure 5 step a) plus PPN generation (step b).
    pub fn lookup(&self, vpn: Vpn) -> Option<Pfn> {
        self.run.translate(vpn)
    }

    /// Shared attribute bits.
    pub fn flags(&self) -> PteFlags {
        self.run.flags
    }

    /// Attempts to merge a *coalesced* entry with another coalesced run
    /// (superpage entries never merge). The merged entry keeps this
    /// entry's ASID tag; tagged containers only offer same-ASID runs.
    pub fn try_merge(&self, other: &CoalescedRun) -> Option<RangeEntry> {
        if self.kind != RangeKind::Coalesced {
            return None;
        }
        self.run.try_union(other).map(|u| RangeEntry::coalesced_tagged(u, self.asid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    fn run(v: u64, p: u64, len: u64) -> CoalescedRun {
        CoalescedRun::new(Vpn::new(v), Pfn::new(p), len, flags())
    }

    #[test]
    fn run_translate_offsets() {
        let r = run(100, 500, 4);
        assert_eq!(r.translate(Vpn::new(100)), Some(Pfn::new(500)));
        assert_eq!(r.translate(Vpn::new(103)), Some(Pfn::new(503)));
        assert_eq!(r.translate(Vpn::new(104)), None);
        assert_eq!(r.translate(Vpn::new(99)), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_length_run_panics() {
        let _ = run(0, 0, 0);
    }

    #[test]
    fn fits_group_checks_alignment_span() {
        assert!(run(8, 0, 4).fits_group(2)); // pages 8..12 = group 2..3
        assert!(run(9, 0, 3).fits_group(2)); // 9..12 within group
        assert!(!run(9, 0, 4).fits_group(2)); // 9..13 crosses
        assert!(run(9, 0, 4).fits_group(3)); // 9..13 within 8..16
        assert!(run(5, 0, 1).fits_group(0)); // single always fits
    }

    #[test]
    fn restrict_to_group_clips_and_keeps_vpn() {
        // Run 6..14, restrict to group of vpn 9 with 4-page groups (8..12).
        let r = run(6, 106, 8);
        let s = r.restrict_to_group(Vpn::new(9), 2).unwrap();
        assert_eq!(s.start_vpn, Vpn::new(8));
        assert_eq!(s.len, 4);
        assert_eq!(s.base_pfn, Pfn::new(108));
        assert!(s.contains(Vpn::new(9)));
        assert_eq!(s.translate(Vpn::new(9)), r.translate(Vpn::new(9)));
    }

    #[test]
    fn restrict_outside_run_is_none() {
        assert!(run(6, 106, 2).restrict_to_group(Vpn::new(20), 2).is_none());
    }

    #[test]
    fn split_at_produces_correct_remnants() {
        let r = run(8, 100, 6); // 8..14 → 100..106
        let (l, rt) = r.split_at(Vpn::new(10)).unwrap();
        assert_eq!(l, Some(run(8, 100, 2)));
        assert_eq!(rt, Some(run(11, 103, 3)));
        // Remnants still translate exactly like the original.
        assert_eq!(l.unwrap().translate(Vpn::new(9)), r.translate(Vpn::new(9)));
        assert_eq!(rt.unwrap().translate(Vpn::new(13)), r.translate(Vpn::new(13)));
    }

    #[test]
    fn split_at_edges_drops_empty_sides() {
        let r = run(8, 100, 3);
        let (l, rt) = r.split_at(Vpn::new(8)).unwrap();
        assert_eq!(l, None);
        assert_eq!(rt, Some(run(9, 101, 2)));
        let (l, rt) = r.split_at(Vpn::new(10)).unwrap();
        assert_eq!(l, Some(run(8, 100, 2)));
        assert_eq!(rt, None);
        let single = run(5, 50, 1);
        assert_eq!(single.split_at(Vpn::new(5)).unwrap(), (None, None));
    }

    #[test]
    fn split_at_outside_is_none() {
        assert!(run(8, 100, 3).split_at(Vpn::new(20)).is_none());
    }

    #[test]
    fn union_of_adjacent_consistent_runs() {
        let a = run(8, 100, 4);
        let b = run(12, 104, 4);
        let u = a.try_union(&b).unwrap();
        assert_eq!(u, run(8, 100, 8));
        // Symmetric.
        assert_eq!(b.try_union(&a).unwrap(), run(8, 100, 8));
    }

    #[test]
    fn union_of_overlapping_runs() {
        let a = run(8, 100, 4);
        let b = run(10, 102, 6);
        assert_eq!(a.try_union(&b).unwrap(), run(8, 100, 8));
    }

    #[test]
    fn union_rejects_gap_inconsistent_anchor_and_flags() {
        let a = run(8, 100, 2);
        assert!(a.try_union(&run(11, 103, 2)).is_none(), "gap at vpn 10");
        assert!(a.try_union(&run(10, 200, 2)).is_none(), "anchor mismatch");
        let mut c = run(10, 102, 2);
        c.flags = PteFlags::user_data().with(PteFlags::DIRTY);
        assert!(a.try_union(&c).is_none(), "flag mismatch");
    }

    #[test]
    fn union_respects_max_range_len() {
        let a = run(0, 0, MAX_RANGE_LEN);
        let b = run(MAX_RANGE_LEN, MAX_RANGE_LEN, 1);
        assert!(a.try_union(&b).is_none());
    }

    #[test]
    fn sa_entry_valid_bits_match_slots() {
        // Run covering slots 1..3 of a 4-slot group (vpns 9,10 of group 8..12).
        let e = SaEntry::new(run(9, 109, 2), 2);
        assert_eq!(e.valid_bits(2), 0b0110);
        assert_eq!(e.group(2), 2);
        assert_eq!(e.lookup(Vpn::new(10)), Some(Pfn::new(110)));
        assert_eq!(e.lookup(Vpn::new(8)), None);
        assert_eq!(e.coalesced_len(), 2);
    }

    #[test]
    fn sa_entry_full_group() {
        let e = SaEntry::new(run(8, 200, 4), 2);
        assert_eq!(e.valid_bits(2), 0b1111);
        for i in 0..4 {
            assert_eq!(e.lookup(Vpn::new(8 + i)), Some(Pfn::new(200 + i)));
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sa_entry_rejects_group_crossing_run() {
        let _ = SaEntry::new(run(9, 0, 4), 2);
    }

    #[test]
    fn range_entry_superpage_requires_alignment() {
        let e = RangeEntry::superpage(Vpn::new(512), Pfn::new(1024), flags());
        assert_eq!(e.kind(), RangeKind::Superpage);
        assert_eq!(e.lookup(Vpn::new(512 + 100)), Some(Pfn::new(1124)));
        assert_eq!(e.run().len, 512);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_superpage_entry_panics() {
        let _ = RangeEntry::superpage(Vpn::new(5), Pfn::new(1024), flags());
    }

    #[test]
    fn superpage_entries_never_merge() {
        let sp = RangeEntry::superpage(Vpn::new(512), Pfn::new(1024), flags());
        let adjacent = CoalescedRun::new(Vpn::new(1024), Pfn::new(1536), 4, flags());
        assert!(sp.try_merge(&adjacent).is_none());
    }

    #[test]
    fn coalesced_entries_merge_with_adjacent_runs() {
        let e = RangeEntry::coalesced(run(16, 300, 8));
        let merged = e.try_merge(&run(24, 308, 8)).unwrap();
        assert_eq!(merged.run(), run(16, 300, 16));
        assert_eq!(merged.kind(), RangeKind::Coalesced);
    }
}
