//! Configuration of the two-level TLB hierarchy and its CoLT mode.

use crate::prefetch::PrefetchConfig;
use crate::replacement::ReplacementPolicy;
use colt_os_mem::page_table::PteFlags;

/// Which coalescing design the hierarchy implements (paper §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ColtMode {
    /// No coalescing: conventional set-associative L1/L2 plus a
    /// fully-associative superpage TLB (the paper's baseline).
    #[default]
    Baseline,
    /// CoLT-SA: coalescing in the set-associative L1 and L2 TLBs via
    /// left-shifted index bits (§4.1).
    ColtSa,
    /// CoLT-FA: coalescing into the fully-associative superpage TLB
    /// (§4.2).
    ColtFa,
    /// CoLT-All: threshold split between the set-associative TLBs and the
    /// superpage TLB (§4.3).
    ColtAll,
}

impl ColtMode {
    /// Short display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ColtMode::Baseline => "Baseline",
            ColtMode::ColtSa => "CoLT-SA",
            ColtMode::ColtFa => "CoLT-FA",
            ColtMode::ColtAll => "CoLT-All",
        }
    }
}

/// Hierarchy parameters. The defaults reproduce the paper's simulated
/// system (§5.2.1): 32-entry 4-way L1, 128-entry 4-way L2, 16-entry
/// superpage TLB (halved to 8 for CoLT-FA/CoLT-All to pay for their more
/// complex lookups, §4.2.4), and index bits left-shifted by two
/// (VPN[4-2] / VPN[6-2], §7.1.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbConfig {
    /// Coalescing design.
    pub mode: ColtMode,
    /// L1 set-associative TLB entries.
    pub l1_entries: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 set-associative TLB entries.
    pub l2_entries: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Fully-associative superpage TLB entries.
    pub sp_entries: usize,
    /// Index left-shift of the set-associative TLBs in coalescing modes
    /// (maximum coalescing `2^sa_shift`).
    pub sa_shift: u32,
    /// CoLT-All threshold: runs of at most this length go to the
    /// set-associative TLBs, longer runs to the superpage TLB (§4.3.1).
    pub all_threshold: u64,
    /// When a coalesced entry is placed in the superpage TLB, also fill
    /// the L2 TLB (§7.1.3 — the policy worth 10–20% extra eliminations).
    pub fill_l2_on_fa: bool,
    /// Merge freshly coalesced entries with resident superpage-TLB
    /// entries (§4.2.1 step 5).
    pub fa_resident_merge: bool,
    /// Victim-selection policy (§4.1.5/§4.2.3 future work: prioritize
    /// high-coalescing entries).
    pub replacement: ReplacementPolicy,
    /// Graceful uncoalescing on invalidation (§4.1.5 future work): only
    /// the victim translation is lost, not its siblings.
    pub graceful_invalidation: bool,
    /// Attribute bits ignored by the coalescing comparison (§4.1.5
    /// future work: per-translation attribute handling). The paper's
    /// hardware requires all attributes equal; relaxing DIRTY/ACCESSED
    /// recovers the contiguity write traffic breaks up.
    pub coalesce_ignore_flags: PteFlags,
    /// Optional sequential TLB prefetcher with a distinct buffer — the
    /// related-work baseline of §2.1 (disabled for all paper designs).
    pub prefetch: Option<PrefetchConfig>,
    /// ASID-tag every entry so context switches only retarget lookups
    /// instead of flushing (SMP extension; the paper's single-core
    /// evaluation is untagged, so this defaults to off and all headline
    /// results use full-flush semantics).
    pub asid_tagged: bool,
}

impl TlbConfig {
    /// The paper's baseline hierarchy: no coalescing, 16-entry superpage
    /// TLB.
    pub fn baseline() -> Self {
        Self {
            mode: ColtMode::Baseline,
            l1_entries: 32,
            l1_ways: 4,
            l2_entries: 128,
            l2_ways: 4,
            sp_entries: 16,
            sa_shift: 0,
            all_threshold: 0,
            fill_l2_on_fa: false,
            fa_resident_merge: false,
            replacement: ReplacementPolicy::Lru,
            graceful_invalidation: false,
            coalesce_ignore_flags: PteFlags::empty(),
            prefetch: None,
            asid_tagged: false,
        }
    }

    /// CoLT-SA with the paper's default two-bit index shift.
    pub fn colt_sa() -> Self {
        Self {
            mode: ColtMode::ColtSa,
            sa_shift: 2,
            ..Self::baseline()
        }
    }

    /// CoLT-FA with the conservatively halved 8-entry superpage TLB.
    pub fn colt_fa() -> Self {
        Self {
            mode: ColtMode::ColtFa,
            sp_entries: 8,
            sa_shift: 0,
            fill_l2_on_fa: true,
            fa_resident_merge: true,
            ..Self::baseline()
        }
    }

    /// CoLT-All: shift-2 set-associative coalescing, 8-entry superpage
    /// TLB, threshold at the set-associative maximum (4).
    pub fn colt_all() -> Self {
        Self {
            mode: ColtMode::ColtAll,
            sp_entries: 8,
            sa_shift: 2,
            all_threshold: 4,
            fill_l2_on_fa: true,
            fa_resident_merge: true,
            ..Self::baseline()
        }
    }

    /// Returns the configuration for `mode` with paper defaults.
    pub fn for_mode(mode: ColtMode) -> Self {
        match mode {
            ColtMode::Baseline => Self::baseline(),
            ColtMode::ColtSa => Self::colt_sa(),
            ColtMode::ColtFa => Self::colt_fa(),
            ColtMode::ColtAll => Self::colt_all(),
        }
    }

    /// Sets the index shift (Figure 19's sweep), adjusting the CoLT-All
    /// threshold to the new set-associative maximum.
    #[must_use]
    pub fn with_shift(mut self, shift: u32) -> Self {
        self.sa_shift = shift;
        if self.mode == ColtMode::ColtAll {
            self.all_threshold = 1 << shift;
        }
        self
    }

    /// Sets L2 associativity at fixed size (Figure 20's sweep).
    #[must_use]
    pub fn with_l2_ways(mut self, ways: usize) -> Self {
        self.l2_ways = ways;
        self
    }

    /// Attaches the related-work sequential prefetcher (§2.1 baseline).
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Enables ASID tagging (SMP extension): entries carry address-space
    /// tags and a context switch becomes a tag change instead of a flush.
    #[must_use]
    pub fn with_asid_tagging(mut self) -> Self {
        self.asid_tagged = true;
        self
    }

    /// Enables every §4.1.5/§4.2.3 future-work refinement on top of the
    /// current design: coalescing-aware replacement, graceful
    /// invalidation, and DIRTY/ACCESSED-tolerant coalescing.
    #[must_use]
    pub fn with_future_work(mut self) -> Self {
        self.replacement = ReplacementPolicy::SmallestCoalescedFirst;
        self.graceful_invalidation = true;
        self.coalesce_ignore_flags = PteFlags::DIRTY.with(PteFlags::ACCESSED);
        self
    }

    /// The index shift actually applied to the set-associative TLBs
    /// (coalescing modes only; baseline and CoLT-FA use conventional
    /// indexing).
    pub fn effective_sa_shift(&self) -> u32 {
        match self.mode {
            ColtMode::ColtSa | ColtMode::ColtAll => self.sa_shift,
            ColtMode::Baseline | ColtMode::ColtFa => 0,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let b = TlbConfig::baseline();
        assert_eq!(b.l1_entries, 32);
        assert_eq!(b.l2_entries, 128);
        assert_eq!(b.sp_entries, 16);
        assert_eq!(b.effective_sa_shift(), 0);

        let sa = TlbConfig::colt_sa();
        assert_eq!(sa.sp_entries, 16);
        assert_eq!(sa.effective_sa_shift(), 2);

        let fa = TlbConfig::colt_fa();
        assert_eq!(fa.sp_entries, 8, "conservatively halved (§4.2.4)");
        assert_eq!(fa.effective_sa_shift(), 0);
        assert!(fa.fill_l2_on_fa);

        let all = TlbConfig::colt_all();
        assert_eq!(all.sp_entries, 8);
        assert_eq!(all.all_threshold, 4);
        assert_eq!(all.effective_sa_shift(), 2);
    }

    #[test]
    fn with_shift_updates_threshold_for_all_mode() {
        let c = TlbConfig::colt_all().with_shift(3);
        assert_eq!(c.all_threshold, 8);
        let c = TlbConfig::colt_sa().with_shift(1);
        assert_eq!(c.sa_shift, 1);
        assert_eq!(c.all_threshold, 0, "threshold untouched outside CoLT-All");
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(ColtMode::ColtSa.label(), "CoLT-SA");
        assert_eq!(ColtMode::Baseline.label(), "Baseline");
    }

    #[test]
    fn for_mode_round_trips() {
        for mode in [ColtMode::Baseline, ColtMode::ColtSa, ColtMode::ColtFa, ColtMode::ColtAll] {
            assert_eq!(TlbConfig::for_mode(mode).mode, mode);
        }
    }
}
