//! The coalescing logic (paper §4.1.4, the "Coalescing Logic" box of
//! Figures 4–6).
//!
//! On a TLB miss the page walk fetches a 64-byte cache line holding the
//! PTEs of eight consecutive virtual pages. *Without any additional
//! memory references*, the coalescing logic inspects those eight slots
//! and extracts the maximal run of contiguous, attribute-identical
//! translations around the requested one. Coalescing is therefore bounded
//! at eight translations per fill — a deliberate restriction that keeps
//! the logic off the critical path.

use crate::entry::CoalescedRun;
use colt_os_mem::addr::Vpn;
use colt_os_mem::page_table::PteLine;

/// Extracts the maximal contiguous run around `vpn` from its PTE cache
/// line. Returns `None` when the requested slot itself holds no
/// translation.
///
/// A slot continues the run only when it is present, its frame number
/// follows on from its neighbor, and its attribute bits are identical
/// (one attribute set per coalesced entry, §4.1.5).
///
/// ```
/// use colt_tlb::coalesce::coalesce_line;
/// use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
/// use colt_os_mem::addr::{Pfn, Vpn};
/// let mut pt = PageTable::new();
/// for i in 0..4 {
///     pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), PteFlags::user_data()));
/// }
/// let line = pt.pte_line(Vpn::new(9));
/// let run = coalesce_line(&line, Vpn::new(9)).expect("slot mapped");
/// assert_eq!(run.len, 4);
/// assert_eq!(run.start_vpn, Vpn::new(8));
/// ```
pub fn coalesce_line(line: &PteLine, vpn: Vpn) -> Option<CoalescedRun> {
    coalesce_line_masked(line, vpn, colt_os_mem::page_table::PteFlags::empty())
}

/// Like [`coalesce_line`], but attribute bits in `ignore` are excluded
/// from the equality check — the §4.1.5 future-work relaxation ("more
/// sophisticated schemes supporting separate attribute bits per
/// translation will improve our results"). A hardware implementation
/// would track the ignored bits per slot; we conservatively OR them into
/// the entry (e.g. the whole entry reads as dirty if any member is).
pub fn coalesce_line_masked(
    line: &PteLine,
    vpn: Vpn,
    ignore: colt_os_mem::page_table::PteFlags,
) -> Option<CoalescedRun> {
    let slot = line.slot_of(vpn);
    let pte = line.ptes[slot]?;
    let key = pte.flags.without(ignore);

    // Scan left while the previous slot holds the previous frame.
    let mut first = slot;
    while first > 0 {
        match line.ptes[first - 1] {
            Some(prev)
                if prev.pfn.is_followed_by(line.ptes[first].expect("in-run slot").pfn)
                    && prev.flags.without(ignore) == key =>
            {
                first -= 1;
            }
            _ => break,
        }
    }
    // Scan right while the next slot continues the run.
    let mut last = slot;
    while last + 1 < line.ptes.len() {
        match line.ptes[last + 1] {
            Some(next)
                if line.ptes[last].expect("in-run slot").pfn.is_followed_by(next.pfn)
                    && next.flags.without(ignore) == key =>
            {
                last += 1;
            }
            _ => break,
        }
    }

    let start_vpn = line.base_vpn.offset(first as u64);
    let base_pfn = line.ptes[first].expect("first is in the run").pfn;
    // Conservative shared attributes: the union of every member's bits.
    let mut flags = pte.flags;
    for s in first..=last {
        flags = flags.with(line.ptes[s].expect("in-run slot").flags);
    }
    Some(CoalescedRun::new(
        start_vpn,
        base_pfn,
        (last - first + 1) as u64,
        flags,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_os_mem::addr::Pfn;
    use colt_os_mem::page_table::{PageTable, Pte, PteFlags, PteLine};

    fn line_from(mappings: &[(u64, u64)]) -> (PageTable, PteLine) {
        let mut pt = PageTable::new();
        for &(v, p) in mappings {
            pt.map_base(Vpn::new(v), Pte::new(Pfn::new(p), PteFlags::user_data()));
        }
        let line = pt.pte_line(Vpn::new(mappings[0].0));
        (pt, line)
    }

    #[test]
    fn full_line_coalesces_to_eight() {
        let maps: Vec<(u64, u64)> = (0..8).map(|i| (16 + i, 200 + i)).collect();
        let (_pt, line) = line_from(&maps);
        let run = coalesce_line(&line, Vpn::new(19)).unwrap();
        assert_eq!(run.len, 8);
        assert_eq!(run.start_vpn, Vpn::new(16));
        assert_eq!(run.base_pfn, Pfn::new(200));
    }

    #[test]
    fn lone_translation_yields_single_run() {
        let (_pt, line) = line_from(&[(16, 200)]);
        let run = coalesce_line(&line, Vpn::new(16)).unwrap();
        assert_eq!(run.len, 1);
    }

    #[test]
    fn requested_slot_unmapped_returns_none() {
        let (_pt, line) = line_from(&[(16, 200)]);
        assert!(coalesce_line(&line, Vpn::new(17)).is_none());
    }

    #[test]
    fn run_is_clipped_by_pfn_discontinuity() {
        // vpns 16,17,18 → 200,201,300: requesting 17 gives run {16,17}.
        let (_pt, line) = line_from(&[(16, 200), (17, 201), (18, 300)]);
        let run = coalesce_line(&line, Vpn::new(17)).unwrap();
        assert_eq!(run.start_vpn, Vpn::new(16));
        assert_eq!(run.len, 2);
        // Requesting 18 gives the singleton {18}.
        let run = coalesce_line(&line, Vpn::new(18)).unwrap();
        assert_eq!(run.start_vpn, Vpn::new(18));
        assert_eq!(run.len, 1);
    }

    #[test]
    fn run_is_clipped_by_hole() {
        let (_pt, line) = line_from(&[(16, 200), (18, 202), (19, 203)]);
        let run = coalesce_line(&line, Vpn::new(18)).unwrap();
        assert_eq!(run.start_vpn, Vpn::new(18));
        assert_eq!(run.len, 2);
    }

    #[test]
    fn run_is_clipped_by_attribute_divergence() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(16), Pte::new(Pfn::new(200), PteFlags::user_data()));
        pt.map_base(
            Vpn::new(17),
            Pte::new(Pfn::new(201), PteFlags::user_data().with(PteFlags::DIRTY)),
        );
        pt.map_base(Vpn::new(18), Pte::new(Pfn::new(202), PteFlags::user_data()));
        let line = pt.pte_line(Vpn::new(16));
        let run = coalesce_line(&line, Vpn::new(16)).unwrap();
        assert_eq!(run.len, 1, "dirty neighbor cannot coalesce");
        let run = coalesce_line(&line, Vpn::new(17)).unwrap();
        assert_eq!(run.len, 1);
    }

    #[test]
    fn coalescing_never_crosses_the_cache_line() {
        // 16 contiguous pages, but a line holds only 8 PTEs.
        let maps: Vec<(u64, u64)> = (0..16).map(|i| (16 + i, 200 + i)).collect();
        let mut pt = PageTable::new();
        for &(v, p) in &maps {
            pt.map_base(Vpn::new(v), Pte::new(Pfn::new(p), PteFlags::user_data()));
        }
        let line = pt.pte_line(Vpn::new(20));
        let run = coalesce_line(&line, Vpn::new(20)).unwrap();
        assert_eq!(run.len, 8, "restricted to one line (§4.1.4)");
        assert_eq!(run.start_vpn, Vpn::new(16));
    }

    #[test]
    fn masked_coalescing_crosses_ignored_attribute_divergence() {
        use super::coalesce_line_masked;
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(16), Pte::new(Pfn::new(200), PteFlags::user_data()));
        pt.map_base(
            Vpn::new(17),
            Pte::new(Pfn::new(201), PteFlags::user_data().with(PteFlags::DIRTY)),
        );
        pt.map_base(Vpn::new(18), Pte::new(Pfn::new(202), PteFlags::user_data()));
        let line = pt.pte_line(Vpn::new(16));
        // Strict comparison: run of 1 (exactly the paper's restriction).
        assert_eq!(coalesce_line(&line, Vpn::new(16)).unwrap().len, 1);
        // Ignoring DIRTY: the full 3-page run coalesces, and the entry
        // conservatively reads as dirty.
        let run = coalesce_line_masked(&line, Vpn::new(16), PteFlags::DIRTY).unwrap();
        assert_eq!(run.len, 3);
        assert!(run.flags.contains(PteFlags::DIRTY));
        // A non-ignored divergence still breaks the run.
        let run = coalesce_line_masked(&line, Vpn::new(16), PteFlags::ACCESSED).unwrap();
        assert_eq!(run.len, 1);
    }

    #[test]
    fn descending_pfns_do_not_coalesce() {
        let (_pt, line) = line_from(&[(16, 203), (17, 202), (18, 201)]);
        let run = coalesce_line(&line, Vpn::new(17)).unwrap();
        assert_eq!(run.len, 1);
    }

    #[test]
    fn run_in_middle_of_line() {
        let (_pt, line) = line_from(&[(18, 300), (19, 301), (20, 302)]);
        for probe in 18..=20u64 {
            let run = coalesce_line(&line, Vpn::new(probe)).unwrap();
            assert_eq!(run.start_vpn, Vpn::new(18));
            assert_eq!(run.len, 3);
        }
    }
}
