//! Set-associative TLB with CoLT-SA's modified set indexing (paper §4.1).
//!
//! A conventional set-associative TLB indexes with the low VPN bits,
//! mapping consecutive translations to consecutive sets and precluding
//! coalescing. CoLT-SA left-shifts the index bits by `shift` so that the
//! `2^shift` consecutive translations of one aligned group map to the
//! same set and can live in one entry (§4.1.2). `shift = 0` yields the
//! baseline non-coalescing TLB; the paper's default is `shift = 2`
//! (VPN[4-2] for the 8-set L1, VPN[6-2] for the 32-set L2).

use crate::entry::{CoalescedRun, SaEntry};
use crate::replacement::ReplacementPolicy;
use colt_os_mem::addr::{Asid, Pfn, Vpn};
use colt_os_mem::page_table::PteFlags;

/// A hit in a set-associative TLB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SaHit {
    /// The translated frame.
    pub pfn: Pfn,
    /// Attribute bits of the coalesced entry.
    pub flags: PteFlags,
    /// Coalesced length of the hit entry (1 for uncoalesced).
    pub entry_len: u64,
    /// The full run held by the hit entry (for refilling upper levels).
    pub run: CoalescedRun,
}

/// Per-structure counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SaStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Inserts absorbed by merging into a resident entry.
    pub merges: u64,
    /// Entries evicted by replacement.
    pub evictions: u64,
    /// Entries removed by invalidation.
    pub invalidations: u64,
}

/// The set-associative TLB.
///
/// ```
/// use colt_tlb::set_assoc::SetAssocTlb;
/// use colt_tlb::entry::CoalescedRun;
/// use colt_os_mem::addr::{Pfn, Vpn};
/// use colt_os_mem::page_table::PteFlags;
/// // 32 entries, 4-way, coalescing up to 4 translations (shift 2).
/// let mut tlb = SetAssocTlb::new(32, 4, 2);
/// tlb.insert(CoalescedRun::new(Vpn::new(8), Pfn::new(100), 4, PteFlags::user_data()));
/// assert_eq!(tlb.lookup(Vpn::new(11)).unwrap().pfn, Pfn::new(103));
/// assert!(tlb.lookup(Vpn::new(12)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocTlb {
    sets: Vec<Vec<SaEntry>>, // each set ordered MRU-first
    ways: usize,
    shift: u32,
    policy: ReplacementPolicy,
    stats: SaStats,
}

impl SetAssocTlb {
    /// Creates a TLB with `entries` total entries, `ways` ways, and index
    /// bits left-shifted by `shift` (max coalescing `2^shift`).
    ///
    /// # Panics
    /// Panics unless `entries` is a power-of-two multiple of `ways` and
    /// `shift <= 3` (coalescing is bounded by the eight PTEs of one cache
    /// line, §4.1.4).
    pub fn new(entries: usize, ways: usize, shift: u32) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways), "entries must divide into ways");
        let num_sets = entries / ways;
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        assert!(shift <= 3, "coalescing beyond one cache line is not possible");
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            shift,
            policy: ReplacementPolicy::Lru,
            stats: SaStats::default(),
        }
    }

    /// Sets the victim-selection policy (§4.1.5 future work).
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The configured index left-shift (log2 of maximum coalescing).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SaStats {
        self.stats
    }

    /// Maximum translations one entry can hold.
    pub fn max_coalescing(&self) -> u64 {
        1 << self.shift
    }

    fn set_index(&self, vpn: Vpn) -> usize {
        ((vpn.raw() >> self.shift) as usize) & (self.sets.len() - 1)
    }

    /// Looks up `vpn`, updating LRU state and hit/miss counters. Untagged
    /// entry point: matches only ASID-0 entries, which in full-flush mode
    /// is every entry — byte-identical to the pre-SMP behavior.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<SaHit> {
        self.lookup_tagged(vpn, Asid(0))
    }

    /// ASID-selective lookup (SMP tagged mode): only entries tagged
    /// `asid` can hit, so stale translations of a descheduled address
    /// space are invisible without a flush.
    pub fn lookup_tagged(&mut self, vpn: Vpn, asid: Asid) -> Option<SaHit> {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.asid() == asid && e.lookup(vpn).is_some()) {
            let entry = set.remove(pos);
            let hit = SaHit {
                pfn: entry.lookup(vpn).expect("position found by lookup"),
                flags: entry.flags(),
                entry_len: entry.coalesced_len(),
                run: entry.run(),
            };
            set.insert(0, entry);
            self.stats.hits += 1;
            return Some(hit);
        }
        self.stats.misses += 1;
        None
    }

    /// Batched lookup: translates every VPN of `vpns` in order,
    /// appending one result per VPN to `out`. State transitions (LRU
    /// promotion, hit/miss counters) are byte-identical to the same
    /// sequence of [`SetAssocTlb::lookup`] calls — batching only
    /// amortizes the per-call overhead of the sweep hot path.
    pub fn lookup_batch(&mut self, vpns: &[Vpn], out: &mut Vec<Option<SaHit>>) {
        self.lookup_batch_tagged(vpns, Asid(0), out);
    }

    /// Tagged variant of [`SetAssocTlb::lookup_batch`].
    pub fn lookup_batch_tagged(&mut self, vpns: &[Vpn], asid: Asid, out: &mut Vec<Option<SaHit>>) {
        out.reserve(vpns.len());
        for &vpn in vpns {
            out.push(self.lookup_tagged(vpn, asid));
        }
    }

    /// Checks for a hit without touching LRU or counters (any ASID).
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let idx = self.set_index(vpn);
        self.sets[idx].iter().find_map(|e| e.lookup(vpn))
    }

    /// ASID-selective probe: no LRU or counter side effects.
    pub fn probe_tagged(&self, vpn: Vpn, asid: Asid) -> Option<Pfn> {
        let idx = self.set_index(vpn);
        self.sets[idx].iter().filter(|e| e.asid() == asid).find_map(|e| e.lookup(vpn))
    }

    /// Inserts a coalesced run, which must fit the TLB's index group.
    /// If a resident entry of the same set can absorb the run (same
    /// group, contiguous union, consistent frames/attributes) the two
    /// merge; otherwise the LRU way is evicted when the set is full.
    ///
    /// Returns the evicted entry, if any.
    ///
    /// # Panics
    /// Panics if `run` spans more than one `2^shift` group (the caller
    /// must restrict it first, see
    /// [`CoalescedRun::restrict_to_group`]).
    pub fn insert(&mut self, run: CoalescedRun) -> Option<SaEntry> {
        self.insert_tagged(run, Asid(0))
    }

    /// Inserts a run tagged with `asid` (SMP tagged mode). Merging only
    /// considers resident entries with the same tag: two address spaces
    /// may map the same VPNs to different frames.
    pub fn insert_tagged(&mut self, run: CoalescedRun, asid: Asid) -> Option<SaEntry> {
        let entry = SaEntry::new_tagged(run, self.shift, asid);
        let idx = self.set_index(run.start_vpn);
        let shift = self.shift;
        let set = &mut self.sets[idx];
        self.stats.insertions += 1;

        // Try merging with a resident entry of the same group.
        for pos in 0..set.len() {
            if set[pos].asid() == asid && set[pos].group(shift) == entry.group(shift) {
                if let Some(union) = set[pos].run().try_union(&run) {
                    set.remove(pos);
                    set.insert(0, SaEntry::new_tagged(union, shift, asid));
                    self.stats.merges += 1;
                    return None;
                }
            }
        }

        let evicted = if set.len() == self.ways {
            self.stats.evictions += 1;
            let candidates: Vec<(usize, u64)> = set
                .iter()
                .enumerate()
                .map(|(rank, e)| (rank, e.coalesced_len()))
                .collect();
            let victim = self.policy.choose_victim(&candidates);
            Some(set.remove(victim))
        } else {
            None
        };
        set.insert(0, entry);
        evicted
    }

    /// Gracefully uncoalesces on invalidation (§4.1.5 future work):
    /// instead of flushing whole coalesced entries covering `vpn`, only
    /// the victim translation is dropped — the remnant runs stay
    /// resident. Returns the number of entries affected.
    pub fn invalidate_graceful(&mut self, vpn: Vpn) -> usize {
        self.invalidate_graceful_filtered(vpn, None)
    }

    /// Graceful invalidation restricted to entries tagged `asid`.
    pub fn invalidate_graceful_asid(&mut self, vpn: Vpn, asid: Asid) -> usize {
        self.invalidate_graceful_filtered(vpn, Some(asid))
    }

    fn invalidate_graceful_filtered(&mut self, vpn: Vpn, filter: Option<Asid>) -> usize {
        let idx = self.set_index(vpn);
        let shift = self.shift;
        let ways = self.ways;
        let set = &mut self.sets[idx];
        let mut affected = 0;
        let mut pos = 0;
        while pos < set.len() {
            if filter.is_some_and(|a| set[pos].asid() != a) {
                pos += 1;
                continue;
            }
            let entry_asid = set[pos].asid();
            if let Some((left, right)) = set[pos].run().split_at(vpn) {
                affected += 1;
                set.remove(pos);
                // Remnants re-enter at the same recency position; both
                // stay within the original entry's index group.
                let mut insert_at = pos;
                for remnant in [left, right].into_iter().flatten() {
                    if set.len() >= ways {
                        // Splitting one entry into two can overflow the
                        // set: make room through the replacement policy
                        // instead of silently dropping a still-valid
                        // remnant — but never victimise a remnant just
                        // re-inserted (ranks `pos..insert_at`).
                        let candidates: Vec<(usize, u64)> = set
                            .iter()
                            .enumerate()
                            .filter(|(rank, _)| !(pos..insert_at).contains(rank))
                            .map(|(rank, e)| (rank, e.coalesced_len()))
                            .collect();
                        if candidates.is_empty() {
                            continue; // one-way set already holds a remnant
                        }
                        let victim = candidates[self.policy.choose_victim(&candidates)].0;
                        self.stats.evictions += 1;
                        set.remove(victim);
                        if victim < insert_at {
                            insert_at -= 1;
                            if victim < pos {
                                pos -= 1;
                            }
                        }
                    }
                    set.insert(insert_at.min(set.len()), SaEntry::new_tagged(remnant, shift, entry_asid));
                    insert_at += 1;
                }
            } else {
                pos += 1;
            }
        }
        self.stats.invalidations += affected as u64;
        affected
    }

    /// Invalidates every entry whose range covers `vpn`. Whole coalesced
    /// entries are flushed, losing their sibling translations (§4.1.5).
    /// Returns the number of entries removed.
    pub fn invalidate(&mut self, vpn: Vpn) -> usize {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        let before = set.len();
        set.retain(|e| e.lookup(vpn).is_none());
        let removed = before - set.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Invalidates entries covering `vpn` that are tagged `asid` (remote
    /// shootdown in SMP tagged mode). Returns the number removed.
    pub fn invalidate_asid(&mut self, vpn: Vpn, asid: Asid) -> usize {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        let before = set.len();
        set.retain(|e| e.asid() != asid || e.lookup(vpn).is_none());
        let removed = before - set.len();
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Flushes the whole TLB.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            self.stats.invalidations += set.len() as u64;
            set.clear();
        }
    }

    /// Flushes only entries tagged `asid` (process exit or ASID
    /// recycling). Returns the number removed.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|e| e.asid() != asid);
            removed += before - set.len();
        }
        self.stats.invalidations += removed as u64;
        removed
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total translations covered by live entries (reach in pages).
    pub fn covered_pages(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .map(SaEntry::coalesced_len)
            .sum()
    }

    /// Iterates live entries (MRU-first within each set).
    pub fn iter(&self) -> impl Iterator<Item = &SaEntry> {
        self.sets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    fn run(v: u64, p: u64, len: u64) -> CoalescedRun {
        CoalescedRun::new(Vpn::new(v), Pfn::new(p), len, flags())
    }

    #[test]
    fn baseline_shift0_maps_consecutive_vpns_to_consecutive_sets() {
        let mut tlb = SetAssocTlb::new(32, 4, 0);
        assert_eq!(tlb.num_sets(), 8);
        tlb.insert(run(0, 100, 1));
        tlb.insert(run(1, 101, 1));
        assert_eq!(tlb.lookup(Vpn::new(0)).unwrap().pfn, Pfn::new(100));
        assert_eq!(tlb.lookup(Vpn::new(1)).unwrap().pfn, Pfn::new(101));
        // Different sets: both live despite 4-way sets.
        assert_eq!(tlb.occupancy(), 2);
    }

    #[test]
    fn shift2_groups_of_four_share_a_set() {
        let tlb = SetAssocTlb::new(32, 4, 2);
        assert_eq!(tlb.num_sets(), 8);
        // vpns 8..12 are one group → same set; 12 starts the next set.
        let mut t = tlb.clone();
        t.insert(run(8, 100, 4));
        assert!(t.probe(Vpn::new(8)).is_some());
        assert!(t.probe(Vpn::new(11)).is_some());
        assert!(t.probe(Vpn::new(12)).is_none());
        assert_eq!(t.occupancy(), 1, "four translations in one entry");
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut tlb = SetAssocTlb::new(8, 2, 0); // 4 sets, 2 ways
        // vpns 0, 4, 8 all map to set 0.
        tlb.insert(run(0, 100, 1));
        tlb.insert(run(4, 104, 1));
        tlb.lookup(Vpn::new(0)); // make vpn 0 MRU
        let evicted = tlb.insert(run(8, 108, 1)).expect("set full, must evict");
        assert_eq!(evicted.run().start_vpn, Vpn::new(4), "LRU way evicted");
        assert!(tlb.probe(Vpn::new(0)).is_some());
        assert!(tlb.probe(Vpn::new(8)).is_some());
    }

    #[test]
    fn conflict_misses_rise_with_aggressive_shift() {
        // The fundamental CoLT-SA tradeoff (§4.1.2): with shift 3, eight
        // consecutive *uncoalescible* translations fight over one set.
        let scattered: Vec<CoalescedRun> =
            (0..8).map(|i| run(i, 500 + 2 * i, 1)).collect(); // non-contiguous pfns
        let mut shift0 = SetAssocTlb::new(8, 2, 0); // 4 sets
        let mut shift3 = SetAssocTlb::new(8, 2, 3); // 1 set... 4 sets of groups of 8
        for r in &scattered {
            shift0.insert(*r);
            shift3.insert(*r);
        }
        let live0 = (0..8).filter(|&i| shift0.probe(Vpn::new(i)).is_some()).count();
        let live3 = (0..8).filter(|&i| shift3.probe(Vpn::new(i)).is_some()).count();
        assert_eq!(live0, 8, "baseline spreads them over all sets");
        assert_eq!(live3, 2, "shift-3 crams all eight into one set of two ways");
    }

    #[test]
    fn insert_merges_into_resident_same_group_entry() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 2)); // slots 0,1
        tlb.insert(run(10, 102, 2)); // slots 2,3 — contiguous continuation
        assert_eq!(tlb.occupancy(), 1, "merged into one entry");
        assert_eq!(tlb.stats().merges, 1);
        assert_eq!(tlb.probe(Vpn::new(11)), Some(Pfn::new(103)));
    }

    #[test]
    fn insert_does_not_merge_inconsistent_runs() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 2));
        tlb.insert(run(10, 900, 2)); // same group, different anchor
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.probe(Vpn::new(9)), Some(Pfn::new(101)));
        assert_eq!(tlb.probe(Vpn::new(10)), Some(Pfn::new(900)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn inserting_group_crossing_run_panics() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(10, 100, 4)); // 10..14 crosses the 8..12 boundary
    }

    #[test]
    fn invalidation_flushes_whole_coalesced_entry() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        assert_eq!(tlb.invalidate(Vpn::new(9)), 1);
        // Sibling translations are lost too (§4.1.5).
        for i in 8..12 {
            assert!(tlb.probe(Vpn::new(i)).is_none());
        }
    }

    #[test]
    fn flush_empties_everything() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        tlb.insert(run(16, 200, 2));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().invalidations, 2);
    }

    #[test]
    fn covered_pages_reports_reach() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        tlb.insert(run(16, 200, 2));
        tlb.insert(run(33, 301, 1));
        assert_eq!(tlb.covered_pages(), 7);
        assert_eq!(tlb.occupancy(), 3);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        tlb.lookup(Vpn::new(8));
        tlb.lookup(Vpn::new(9));
        tlb.lookup(Vpn::new(100));
        let s = tlb.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn graceful_invalidation_keeps_sibling_translations() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        assert_eq!(tlb.invalidate_graceful(Vpn::new(9)), 1);
        // Only the victim is gone (§4.1.5 future work).
        assert_eq!(tlb.probe(Vpn::new(8)), Some(Pfn::new(100)));
        assert_eq!(tlb.probe(Vpn::new(9)), None);
        assert_eq!(tlb.probe(Vpn::new(10)), Some(Pfn::new(102)));
        assert_eq!(tlb.probe(Vpn::new(11)), Some(Pfn::new(103)));
        assert_eq!(tlb.occupancy(), 2, "split into two remnants");
    }

    #[test]
    fn graceful_invalidation_of_edge_and_single() {
        let mut tlb = SetAssocTlb::new(32, 4, 2);
        tlb.insert(run(8, 100, 4));
        tlb.invalidate_graceful(Vpn::new(8)); // leading edge
        assert_eq!(tlb.probe(Vpn::new(8)), None);
        assert_eq!(tlb.probe(Vpn::new(9)), Some(Pfn::new(101)));
        assert_eq!(tlb.occupancy(), 1);
        tlb.insert(run(16, 200, 1));
        tlb.invalidate_graceful(Vpn::new(16)); // singleton: nothing remains
        assert_eq!(tlb.probe(Vpn::new(16)), None);
    }

    #[test]
    fn graceful_mid_split_in_full_set_keeps_both_remnants() {
        // Regression: splitting a mid-run hit produces TWO remnants, but
        // a full set used to have room for only one — the second (still
        // valid) remnant was silently dropped instead of evicting per
        // policy.
        let mut tlb = SetAssocTlb::new(8, 2, 2); // 4 sets, 2 ways
        tlb.insert(run(0, 100, 3)); // set 0, covers vpns 0..3
        tlb.insert(run(16, 116, 1)); // group 4 → also set 0: set now full
        assert_eq!(tlb.invalidate_graceful(Vpn::new(1)), 1);
        assert_eq!(tlb.probe(Vpn::new(0)), Some(Pfn::new(100)));
        assert_eq!(tlb.probe(Vpn::new(1)), None, "victim gone");
        assert_eq!(
            tlb.probe(Vpn::new(2)),
            Some(Pfn::new(102)),
            "second remnant must survive a full set"
        );
        assert_eq!(tlb.probe(Vpn::new(16)), None, "LRU way evicted to make room");
        assert_eq!(tlb.stats().evictions, 1, "the displacement is a counted eviction");
    }

    #[test]
    fn graceful_split_in_one_way_set_keeps_first_remnant_only() {
        let mut tlb = SetAssocTlb::new(4, 1, 2); // 4 sets, 1 way
        tlb.insert(run(0, 100, 3));
        tlb.invalidate_graceful(Vpn::new(1));
        // Only one slot exists: the left remnant takes it, the right one
        // is dropped (never evict a remnant to hold its sibling).
        assert_eq!(tlb.probe(Vpn::new(0)), Some(Pfn::new(100)));
        assert_eq!(tlb.probe(Vpn::new(1)), None);
        assert_eq!(tlb.probe(Vpn::new(2)), None);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.stats().evictions, 0);
    }

    #[test]
    fn coalesced_first_replacement_protects_big_entries() {
        use crate::replacement::ReplacementPolicy;
        let mut tlb =
            SetAssocTlb::new(8, 2, 2).with_policy(ReplacementPolicy::SmallestCoalescedFirst);
        // 4 sets at shift 2: groups ≡ 0 mod 4 share set 0 → vpns 0, 16, 32.
        tlb.insert(run(0, 100, 4)); // big entry
        tlb.insert(run(16, 116, 1)); // singleton, more recent
        // Insert a third conflicting entry: the singleton goes, not the
        // older 4-page entry (plain LRU would evict the 4-pager).
        tlb.insert(run(32, 132, 2));
        assert!(tlb.probe(Vpn::new(0)).is_some(), "high-reach entry survives");
        assert!(tlb.probe(Vpn::new(16)).is_none(), "singleton evicted first");
        assert!(tlb.probe(Vpn::new(32)).is_some());
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut tlb = SetAssocTlb::new(8, 2, 0);
        tlb.insert(run(0, 100, 1));
        tlb.insert(run(4, 104, 1)); // MRU now 4
        tlb.probe(Vpn::new(0)); // must NOT promote 0
        let evicted = tlb.insert(run(8, 108, 1)).unwrap();
        assert_eq!(evicted.run().start_vpn, Vpn::new(0));
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let vpns: Vec<Vpn> = [8, 9, 100, 11, 8, 50, 10].map(Vpn::new).to_vec();
        let mut seq = SetAssocTlb::new(32, 4, 2);
        seq.insert(run(8, 100, 4));
        let mut batched = seq.clone();
        let expected: Vec<Option<SaHit>> = vpns.iter().map(|&v| seq.lookup(v)).collect();
        let mut got = Vec::new();
        batched.lookup_batch(&vpns, &mut got);
        assert_eq!(got, expected);
        assert_eq!(batched.stats(), seq.stats(), "counters and LRU evolve identically");
    }
}
