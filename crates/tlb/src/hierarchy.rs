//! The two-level TLB hierarchy in its four flavors (paper §4, Figures
//! 4–6): a set-associative L1 probed in parallel with the fully-
//! associative superpage TLB, backed by a set-associative L2 that is
//! inclusive of the L1-SA only.
//!
//! The hierarchy is deliberately decoupled from the page-table walker:
//! [`TlbHierarchy::lookup`] reports where (if anywhere) a translation
//! hit, and after a miss the caller performs the walk and passes the
//! fetched PTE cache line (or superpage leaf) to [`TlbHierarchy::fill`],
//! where the mode-specific coalescing and placement policies live.

use crate::coalesce::coalesce_line_masked;
use crate::config::{ColtMode, TlbConfig};
use crate::entry::{CoalescedRun, RangeEntry};
use crate::fully_assoc::{FaStats, FullyAssocTlb};
use crate::prefetch::PrefetchBuffer;
use crate::set_assoc::{SaStats, SetAssocTlb};
use crate::stats::HierarchyStats;
use colt_os_mem::addr::{Asid, Pfn, Vpn};
use colt_os_mem::page_table::{PteFlags, PteLine};

/// Where a lookup hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbLevel {
    /// Set-associative L1 or superpage TLB (same hit time, probed in
    /// parallel — both count as L1, §7.1.1).
    L1,
    /// The L2 TLB.
    L2,
}

/// A successful translation from the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbHit {
    /// Level that provided the translation.
    pub level: TlbLevel,
    /// Translated frame.
    pub pfn: Pfn,
}

/// What the page walk found, as handed to [`TlbHierarchy::fill`].
#[derive(Clone, Copy, Debug)]
pub enum WalkFill {
    /// A base-page translation plus the 64-byte cache line of PTEs it was
    /// fetched with — the coalescing window (§4.1.4).
    Base {
        /// The PTE line covering the requested page.
        line: PteLine,
    },
    /// A 2MB superpage leaf.
    Super {
        /// First virtual page of the superpage.
        base_vpn: Vpn,
        /// First frame of the superpage.
        base_pfn: Pfn,
        /// Attribute bits.
        flags: PteFlags,
    },
}

/// The two-level TLB hierarchy.
///
/// ```
/// use colt_tlb::hierarchy::{TlbHierarchy, WalkFill};
/// use colt_tlb::config::TlbConfig;
/// use colt_os_mem::page_table::{PageTable, Pte, PteFlags};
/// use colt_os_mem::addr::{Pfn, Vpn};
///
/// let mut pt = PageTable::new();
/// for i in 0..4 {
///     pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), PteFlags::user_data()));
/// }
/// let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
/// assert!(tlb.lookup(Vpn::new(8)).is_none()); // cold miss → walk
/// tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
/// // The whole 4-page run was coalesced into the filled entry:
/// assert!(tlb.lookup(Vpn::new(11)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    config: TlbConfig,
    l1: SetAssocTlb,
    l2: SetAssocTlb,
    sp: FullyAssocTlb,
    pb: Option<PrefetchBuffer>,
    stats: HierarchyStats,
    current_asid: Asid,
}

impl TlbHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: TlbConfig) -> Self {
        let shift = config.effective_sa_shift();
        Self {
            l1: SetAssocTlb::new(config.l1_entries, config.l1_ways, shift)
                .with_policy(config.replacement),
            l2: SetAssocTlb::new(config.l2_entries, config.l2_ways, shift)
                .with_policy(config.replacement),
            sp: FullyAssocTlb::new(config.sp_entries).with_policy(config.replacement),
            pb: config.prefetch.map(PrefetchBuffer::new),
            stats: HierarchyStats::default(),
            current_asid: Asid(0),
            config,
        }
    }

    /// The tag applied to lookups and fills: the running ASID in tagged
    /// mode, the shared global tag (ASID 0) otherwise.
    fn tag(&self) -> Asid {
        if self.config.asid_tagged { self.current_asid } else { Asid(0) }
    }

    /// Retargets the hierarchy to `asid` on a context switch (tagged
    /// mode). Untagged hierarchies ignore the tag on lookup, so the
    /// caller must keep flushing there; in tagged mode this replaces the
    /// flush. The prefetch buffer is untagged and is drained on a switch.
    pub fn set_current_asid(&mut self, asid: Asid) {
        if self.config.asid_tagged && asid != self.current_asid {
            if let Some(pb) = self.pb.as_mut() {
                pb.flush();
            }
        }
        self.current_asid = asid;
    }

    /// The ASID lookups currently translate for.
    pub fn current_asid(&self) -> Asid {
        self.current_asid
    }

    /// Drains queued prefetch requests (the caller performs background
    /// walks and calls [`TlbHierarchy::fill_prefetch`]).
    pub fn take_prefetch_requests(&mut self) -> Vec<Vpn> {
        self.pb.as_mut().map(PrefetchBuffer::take_requests).unwrap_or_default()
    }

    /// Installs a background-prefetched translation into the prefetch
    /// buffer.
    pub fn fill_prefetch(&mut self, vpn: Vpn, pfn: Pfn, flags: PteFlags) {
        if let Some(pb) = self.pb.as_mut() {
            pb.fill(vpn, pfn, flags);
        }
    }

    /// Prefetch-buffer counters, when the prefetcher is attached.
    pub fn prefetch_stats(&self) -> Option<crate::prefetch::PrefetchStats> {
        self.pb.as_ref().map(PrefetchBuffer::stats)
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Hierarchy-level counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// L1 structure counters.
    pub fn l1_stats(&self) -> SaStats {
        self.l1.stats()
    }

    /// L2 structure counters.
    pub fn l2_stats(&self) -> SaStats {
        self.l2.stats()
    }

    /// Superpage-TLB counters.
    pub fn sp_stats(&self) -> FaStats {
        self.sp.stats()
    }

    /// The set-associative L1 (read access for tests/analysis).
    pub fn l1(&self) -> &SetAssocTlb {
        &self.l1
    }

    /// The set-associative L2.
    pub fn l2(&self) -> &SetAssocTlb {
        &self.l2
    }

    /// The fully-associative superpage TLB.
    pub fn sp(&self) -> &FullyAssocTlb {
        &self.sp
    }

    /// Translates `vpn` through the hierarchy. `None` means a full miss:
    /// the caller must walk the page table and then call
    /// [`TlbHierarchy::fill`].
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbHit> {
        let tag = self.tag();
        self.stats.accesses += 1;
        // L1 SA and superpage TLB are probed in parallel (§7.1.1).
        let l1_hit = self.l1.lookup_tagged(vpn, tag);
        let sp_hit = self.sp.lookup_tagged(vpn, tag);
        if let Some(h) = l1_hit {
            self.stats.l1_hits += 1;
            return Some(TlbHit { level: TlbLevel::L1, pfn: h.pfn });
        }
        if let Some(h) = sp_hit {
            self.stats.l1_hits += 1;
            return Some(TlbHit { level: TlbLevel::L1, pfn: h.pfn });
        }
        // Prefetch buffer: probed alongside the L1 (separate structure,
        // §2 related work); a hit promotes into the L1 proper. The buffer
        // itself is untagged — it is flushed on ASID switches, so every
        // resident translation belongs to the running address space.
        if let Some(pb) = self.pb.as_mut() {
            if let Some((pfn, flags)) = pb.lookup(vpn) {
                self.stats.l1_hits += 1;
                self.stats.pb_hits += 1;
                self.l1.insert_tagged(CoalescedRun::single(vpn, pfn, flags), tag);
                return Some(TlbHit { level: TlbLevel::L1, pfn });
            }
        }
        self.stats.l1_misses += 1;
        if let Some(h) = self.l2.lookup_tagged(vpn, tag) {
            self.stats.l2_hits += 1;
            // Refill L1 with the L1-group restriction of the hit entry.
            if let Some(restricted) = h.run.restrict_to_group(vpn, self.l1.shift()) {
                self.l1.insert_tagged(restricted, tag);
            }
            return Some(TlbHit { level: TlbLevel::L2, pfn: h.pfn });
        }
        self.stats.l2_misses += 1;
        if let Some(pb) = self.pb.as_mut() {
            pb.note_miss(vpn);
        }
        None
    }

    /// Batched lookup for the simulation hot path: translates the
    /// leading run of *hits* in `vpns`, appending one [`TlbHit`] per hit
    /// to `hits`, and returns the length `n` of that run.
    ///
    /// When `n < vpns.len()`, the lookup for `vpns[n]` was **also
    /// performed and missed** — its miss counters and prefetch-buffer
    /// miss notification are already applied, exactly as after a
    /// `None`-returning [`TlbHierarchy::lookup`] — and the caller must
    /// walk the page table and [`TlbHierarchy::fill`] for it before
    /// resuming with `vpns[n + 1..]`.
    ///
    /// Stopping at the first miss is what keeps batching byte-identical
    /// to the per-reference loop: lookups never touch the data caches,
    /// so a run of hits can be translated ahead of its data accesses,
    /// but a miss's page walk *does* go through the caches and must not
    /// be reordered past them.
    pub fn lookup_batch(&mut self, vpns: &[Vpn], hits: &mut Vec<TlbHit>) -> usize {
        for (i, &vpn) in vpns.iter().enumerate() {
            match self.lookup(vpn) {
                Some(hit) => hits.push(hit),
                None => return i,
            }
        }
        vpns.len()
    }

    /// Installs the result of a page walk, applying the mode's coalescing
    /// and placement policy. Must be called with the same `vpn` that
    /// missed.
    pub fn fill(&mut self, vpn: Vpn, fill: &WalkFill) {
        let tag = self.tag();
        match fill {
            WalkFill::Super { base_vpn, base_pfn, flags } => {
                // Superpages go to the fully-associative TLB in every mode.
                self.sp.insert(RangeEntry::superpage_tagged(*base_vpn, *base_pfn, *flags, tag));
                self.stats.superpage_fills += 1;
                self.stats.record_fill(1);
            }
            WalkFill::Base { line } => {
                let Some(run) =
                    coalesce_line_masked(line, vpn, self.config.coalesce_ignore_flags)
                else {
                    return;
                };
                match self.config.mode {
                    ColtMode::Baseline => {
                        let single = run
                            .restrict_to_group(vpn, 0)
                            .expect("run contains the requested vpn");
                        self.stats.record_fill(1);
                        self.l2.insert_tagged(single, tag);
                        self.l1.insert_tagged(single, tag);
                    }
                    ColtMode::ColtSa => {
                        self.stats.record_fill(
                            run.restrict_to_group(vpn, self.l2.shift())
                                .expect("run contains vpn")
                                .len,
                        );
                        let l2_run = run
                            .restrict_to_group(vpn, self.l2.shift())
                            .expect("run contains vpn");
                        self.l2.insert_tagged(l2_run, tag);
                        let l1_run = run
                            .restrict_to_group(vpn, self.l1.shift())
                            .expect("run contains vpn");
                        self.l1.insert_tagged(l1_run, tag);
                    }
                    ColtMode::ColtFa => {
                        self.stats.record_fill(run.len);
                        if run.len > 1 {
                            // Coalescible: place the range in the superpage
                            // TLB; L1 is left unaffected (§4.2.1), but the
                            // requested translation also goes to the L2 so
                            // evictions from the tiny FA structure do not
                            // lose it (§7.1.3).
                            if self.config.fa_resident_merge {
                                self.sp.insert_coalesced_with_merge_tagged(run, tag);
                            } else {
                                self.sp.insert(RangeEntry::coalesced_tagged(run, tag));
                            }
                            if self.config.fill_l2_on_fa {
                                let single = run
                                    .restrict_to_group(vpn, 0)
                                    .expect("run contains vpn");
                                self.l2.insert_tagged(single, tag);
                            }
                        } else {
                            self.l2.insert_tagged(run, tag);
                            self.l1.insert_tagged(run, tag);
                        }
                    }
                    ColtMode::ColtAll => {
                        self.stats.record_fill(run.len);
                        if run.len <= self.config.all_threshold {
                            // Below threshold: the set-associative indexing
                            // can accommodate it (§4.3.1).
                            let l2_run = run
                                .restrict_to_group(vpn, self.l2.shift())
                                .expect("run contains vpn");
                            self.l2.insert_tagged(l2_run, tag);
                            let l1_run = run
                                .restrict_to_group(vpn, self.l1.shift())
                                .expect("run contains vpn");
                            self.l1.insert_tagged(l1_run, tag);
                        } else {
                            if self.config.fa_resident_merge {
                                self.sp.insert_coalesced_with_merge_tagged(run, tag);
                            } else {
                                self.sp.insert(RangeEntry::coalesced_tagged(run, tag));
                            }
                            if self.config.fill_l2_on_fa {
                                // Unlike CoLT-FA, bring as much of the run
                                // into the L2 as its indexing permits
                                // (§4.3.1).
                                let l2_run = run
                                    .restrict_to_group(vpn, self.l2.shift())
                                    .expect("run contains vpn");
                                self.l2.insert_tagged(l2_run, tag);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Invalidates every entry covering `vpn` in all structures (whole
    /// coalesced entries flush, §4.1.5).
    pub fn invalidate(&mut self, vpn: Vpn) {
        if self.config.graceful_invalidation {
            self.l1.invalidate_graceful(vpn);
            self.l2.invalidate_graceful(vpn);
            self.sp.invalidate_graceful(vpn);
        } else {
            self.l1.invalidate(vpn);
            self.l2.invalidate(vpn);
            self.sp.invalidate(vpn);
        }
        if let Some(pb) = self.pb.as_mut() {
            pb.invalidate(vpn);
        }
    }

    /// Invalidates entries covering `vpn` that are tagged `asid` — a
    /// remote shootdown delivered to a core running a *different*
    /// address space (SMP tagged mode). Graceful uncoalescing applies
    /// per the configuration, exactly as for local invalidations.
    pub fn invalidate_asid(&mut self, vpn: Vpn, asid: Asid) {
        if self.config.graceful_invalidation {
            self.l1.invalidate_graceful_asid(vpn, asid);
            self.l2.invalidate_graceful_asid(vpn, asid);
            self.sp.invalidate_graceful_asid(vpn, asid);
        } else {
            self.l1.invalidate_asid(vpn, asid);
            self.l2.invalidate_asid(vpn, asid);
            self.sp.invalidate_asid(vpn, asid);
        }
        if self.tag() == asid {
            if let Some(pb) = self.pb.as_mut() {
                pb.invalidate(vpn);
            }
        }
    }

    /// Flushes every entry tagged `asid` across all structures (process
    /// exit / ASID recycling). Returns the number of entries removed.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        let mut removed = self.l1.flush_asid(asid);
        removed += self.l2.flush_asid(asid);
        removed += self.sp.flush_asid(asid);
        if self.tag() == asid {
            if let Some(pb) = self.pb.as_mut() {
                pb.flush();
            }
        }
        self.stats.asid_flushes += 1;
        self.stats.asid_entries_flushed += removed as u64;
        removed
    }

    /// Flushes the entire hierarchy (e.g. context switch).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.sp.flush();
        if let Some(pb) = self.pb.as_mut() {
            pb.flush();
        }
    }

    /// Total pages covered by live entries across all structures.
    pub fn reach_pages(&self) -> u64 {
        self.l1.covered_pages() + self.l2.covered_pages() + self.sp.covered_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_os_mem::page_table::{PageTable, Pte};

    fn flags() -> PteFlags {
        PteFlags::user_data()
    }

    /// Page table with `n` contiguously backed pages starting at vpn 8.
    fn contiguous_pt(n: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..n {
            pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), flags()));
        }
        pt
    }

    fn miss_walk_fill(tlb: &mut TlbHierarchy, pt: &PageTable, vpn: Vpn) {
        assert!(tlb.lookup(vpn).is_none(), "expected miss at {vpn}");
        tlb.fill(vpn, &WalkFill::Base { line: pt.pte_line(vpn) });
    }

    #[test]
    fn baseline_caches_one_translation_per_fill() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::baseline());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        assert_eq!(
            tlb.lookup(Vpn::new(8)).unwrap(),
            TlbHit { level: TlbLevel::L1, pfn: Pfn::new(100) }
        );
        // The neighbor was NOT cached despite contiguity.
        assert!(tlb.lookup(Vpn::new(9)).is_none());
    }

    #[test]
    fn colt_sa_coalesces_up_to_the_index_group() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        // Group 8..12 now present from one fill.
        for i in 8..12 {
            assert_eq!(tlb.lookup(Vpn::new(i)).unwrap().pfn, Pfn::new(92 + i));
        }
        // 12..16 is a different group: still a miss.
        assert!(tlb.lookup(Vpn::new(12)).is_none());
        assert_eq!(tlb.stats().l2_misses, 2);
    }

    #[test]
    fn colt_fa_coalesces_the_full_cache_line() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_fa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(10));
        // All 8 translations of the line hit in the superpage TLB now.
        for i in 8..16 {
            let hit = tlb.lookup(Vpn::new(i)).unwrap();
            assert_eq!(hit.level, TlbLevel::L1, "SP TLB hits count as L1");
            assert_eq!(hit.pfn, Pfn::new(92 + i));
        }
        assert_eq!(tlb.sp().occupancy(), 1);
    }

    #[test]
    fn colt_fa_also_fills_requested_translation_into_l2() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_fa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(10));
        // L2 has exactly the requested single translation (§7.1.3).
        assert_eq!(tlb.l2().occupancy(), 1);
        assert_eq!(tlb.l2().probe(Vpn::new(10)), Some(Pfn::new(102)));
        assert_eq!(tlb.l2().probe(Vpn::new(11)), None);
        // And L1-SA was left unaffected (§4.2.1).
        assert_eq!(tlb.l1().occupancy(), 0);
    }

    #[test]
    fn colt_fa_uncoalescible_fill_goes_to_l1_and_l2() {
        let mut pt = PageTable::new();
        pt.map_base(Vpn::new(8), Pte::new(Pfn::new(100), flags()));
        pt.map_base(Vpn::new(9), Pte::new(Pfn::new(500), flags()));
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_fa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        assert_eq!(tlb.sp().occupancy(), 0, "singletons skip the FA TLB");
        assert_eq!(tlb.l1().probe(Vpn::new(8)), Some(Pfn::new(100)));
        assert_eq!(tlb.l2().probe(Vpn::new(8)), Some(Pfn::new(100)));
    }

    #[test]
    fn colt_all_routes_by_threshold() {
        // Short run (3 pages): goes to the set-associative TLBs.
        let mut pt = PageTable::new();
        for i in 0..3 {
            pt.map_base(Vpn::new(8 + i), Pte::new(Pfn::new(100 + i), flags()));
        }
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_all());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        assert_eq!(tlb.sp().occupancy(), 0, "short runs avoid the SP TLB");
        assert!(tlb.l1().probe(Vpn::new(10)).is_some());

        // Long run (8 pages): goes to the SP TLB, with the L2 receiving
        // the indexing-restricted sub-run.
        let pt8 = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_all());
        miss_walk_fill(&mut tlb, &pt8, Vpn::new(9));
        assert_eq!(tlb.sp().occupancy(), 1);
        assert_eq!(tlb.sp().covered_pages(), 8);
        // L2 got the 4-page group 8..12 around the request.
        assert_eq!(tlb.l2().probe(Vpn::new(11)), Some(Pfn::new(103)));
        assert_eq!(tlb.l2().probe(Vpn::new(12)), None);
    }

    #[test]
    fn superpage_fills_reach_sp_tlb_in_every_mode() {
        for config in [
            TlbConfig::baseline(),
            TlbConfig::colt_sa(),
            TlbConfig::colt_fa(),
            TlbConfig::colt_all(),
        ] {
            let mut tlb = TlbHierarchy::new(config);
            assert!(tlb.lookup(Vpn::new(512 + 9)).is_none());
            tlb.fill(
                Vpn::new(512 + 9),
                &WalkFill::Super {
                    base_vpn: Vpn::new(512),
                    base_pfn: Pfn::new(2048),
                    flags: flags(),
                },
            );
            let hit = tlb.lookup(Vpn::new(512 + 100)).unwrap();
            assert_eq!(hit.pfn, Pfn::new(2148));
            assert_eq!(hit.level, TlbLevel::L1);
        }
    }

    #[test]
    fn l2_hit_refills_l1() {
        let pt = contiguous_pt(4);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        // Evict the L1 entry by flooding its set with conflicting groups:
        // L1 has 8 sets of 4 ways at shift 2 → groups spaced 8 apart
        // (vpns spaced 32) collide with group 2 (vpns 8..12).
        let mut conflict_pt = PageTable::new();
        for g in 1..=4u64 {
            let v = 8 + g * 32;
            conflict_pt.map_base(Vpn::new(v), Pte::new(Pfn::new(1000 + v), flags()));
        }
        for g in 1..=4u64 {
            let v = Vpn::new(8 + g * 32);
            assert!(tlb.lookup(v).is_none());
            tlb.fill(v, &WalkFill::Base { line: conflict_pt.pte_line(v) });
        }
        assert_eq!(tlb.l1().probe(Vpn::new(8)), None, "L1 entry evicted");
        // L2 still holds the coalesced run → L2 hit, and L1 is refilled.
        let hit = tlb.lookup(Vpn::new(9)).unwrap();
        assert_eq!(hit.level, TlbLevel::L2);
        assert_eq!(hit.pfn, Pfn::new(101));
        assert_eq!(tlb.l1().probe(Vpn::new(9)), Some(Pfn::new(101)), "refilled");
        // The refill restored the whole coalesced group to L1.
        assert_eq!(tlb.l1().probe(Vpn::new(10)), Some(Pfn::new(102)));
    }

    #[test]
    fn stats_track_levels_and_coalescing() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_fa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        tlb.lookup(Vpn::new(9));
        tlb.lookup(Vpn::new(15));
        let s = tlb.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
        assert_eq!(s.l1_hits, 2);
        assert_eq!(s.coalesce_hist[7], 1, "8-page run recorded");
        assert!((s.avg_coalescing() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_flushes_all_structures() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_all());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8));
        tlb.invalidate(Vpn::new(9));
        assert!(tlb.l1().probe(Vpn::new(8)).is_none());
        assert!(tlb.l2().probe(Vpn::new(8)).is_none());
        assert!(tlb.sp().probe(Vpn::new(8)).is_none());
    }

    #[test]
    fn reach_grows_with_coalescing() {
        let pt = contiguous_pt(8);
        let mut base = TlbHierarchy::new(TlbConfig::baseline());
        let mut fa = TlbHierarchy::new(TlbConfig::colt_fa());
        miss_walk_fill(&mut base, &pt, Vpn::new(8));
        miss_walk_fill(&mut fa, &pt, Vpn::new(8));
        assert!(fa.reach_pages() > base.reach_pages());
    }

    #[test]
    fn prefetch_buffer_serves_sequential_neighbors() {
        use crate::prefetch::PrefetchConfig;
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(
            TlbConfig::baseline().with_prefetch(PrefetchConfig { buffer_entries: 16, degree: 1 }),
        );
        // Miss on vpn 8 → prefetch request for vpn 9 queued.
        assert!(tlb.lookup(Vpn::new(8)).is_none());
        tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
        let reqs = tlb.take_prefetch_requests();
        assert_eq!(reqs, vec![Vpn::new(9)]);
        tlb.fill_prefetch(Vpn::new(9), Pfn::new(101), flags());
        // The next access to vpn 9 hits the prefetch buffer at L1 level.
        let hit = tlb.lookup(Vpn::new(9)).expect("PB hit");
        assert_eq!(hit.level, TlbLevel::L1);
        assert_eq!(hit.pfn, Pfn::new(101));
        assert_eq!(tlb.stats().pb_hits, 1);
        // Promotion installed it in the L1 proper.
        assert_eq!(tlb.l1().probe(Vpn::new(9)), Some(Pfn::new(101)));
    }

    #[test]
    fn without_prefetcher_no_requests_are_queued() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::baseline());
        assert!(tlb.lookup(Vpn::new(8)).is_none());
        tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
        assert!(tlb.take_prefetch_requests().is_empty());
        assert_eq!(tlb.stats().pb_hits, 0);
    }

    #[test]
    fn future_work_config_changes_invalidation_semantics() {
        let pt = contiguous_pt(8);
        let mut flushy = TlbHierarchy::new(TlbConfig::colt_sa());
        let mut graceful = TlbHierarchy::new(TlbConfig::colt_sa().with_future_work());
        for tlb in [&mut flushy, &mut graceful] {
            assert!(tlb.lookup(Vpn::new(8)).is_none());
            tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
        }
        flushy.invalidate(Vpn::new(9));
        graceful.invalidate(Vpn::new(9));
        // Whole-entry flush loses the siblings; graceful keeps them.
        assert_eq!(flushy.l1().probe(Vpn::new(10)), None);
        assert_eq!(graceful.l1().probe(Vpn::new(10)), Some(Pfn::new(102)));
        assert_eq!(graceful.l1().probe(Vpn::new(9)), None, "victim gone");
    }

    #[test]
    fn lookup_batch_stops_at_the_first_miss_with_it_counted() {
        let pt = contiguous_pt(8);
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
        miss_walk_fill(&mut tlb, &pt, Vpn::new(8)); // group 8..12 resident
        let vpns: Vec<Vpn> = [8, 11, 9, 12, 10].map(Vpn::new).to_vec();
        let mut hits = Vec::new();
        let n = tlb.lookup_batch(&vpns, &mut hits);
        assert_eq!(n, 3, "8, 11, 9 hit; 12 is outside the coalesced group");
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.level == TlbLevel::L1));
        // The miss at vpns[3] was performed and counted, exactly like a
        // None-returning lookup; vpns[4] was NOT touched.
        let s = tlb.stats();
        assert_eq!(s.accesses, 1 + 3 + 1, "initial miss + 3 hits + 1 miss");
        assert_eq!(s.l2_misses, 2);
        // After the caller fills, the batch resumes on the tail.
        tlb.fill(Vpn::new(12), &WalkFill::Base { line: pt.pte_line(Vpn::new(12)) });
        let mut tail = Vec::new();
        assert_eq!(tlb.lookup_batch(&vpns[4..], &mut tail), 1);
        assert_eq!(tail[0].pfn, Pfn::new(102));
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let pt = contiguous_pt(8);
        let mut seq = TlbHierarchy::new(TlbConfig::colt_all());
        let mut batched = seq.clone();
        let vpns: Vec<Vpn> = [8, 9, 15, 10, 13, 8, 14].map(Vpn::new).to_vec();
        // Drive the sequential reference loop.
        let mut expected = Vec::new();
        for &v in &vpns {
            match seq.lookup(v) {
                Some(h) => expected.push(h),
                None => seq.fill(v, &WalkFill::Base { line: pt.pte_line(v) }),
            }
        }
        // Drive the batched loop over the same stream.
        let mut got = Vec::new();
        let mut rest: &[Vpn] = &vpns;
        while !rest.is_empty() {
            let n = batched.lookup_batch(rest, &mut got);
            if n < rest.len() {
                let v = rest[n];
                batched.fill(v, &WalkFill::Base { line: pt.pte_line(v) });
                rest = &rest[n + 1..];
            } else {
                rest = &[];
            }
        }
        assert_eq!(got, expected);
        assert_eq!(batched.stats(), seq.stats());
        assert_eq!(batched.l1_stats(), seq.l1_stats());
        assert_eq!(batched.l2_stats(), seq.l2_stats());
        assert_eq!(batched.sp_stats(), seq.sp_stats());
    }

    #[test]
    fn fill_with_unmapped_slot_is_harmless() {
        let pt = PageTable::new();
        let mut tlb = TlbHierarchy::new(TlbConfig::colt_sa());
        tlb.fill(Vpn::new(8), &WalkFill::Base { line: pt.pte_line(Vpn::new(8)) });
        assert_eq!(tlb.stats().fills, 0);
    }
}
