//! Hierarchy-level TLB statistics.
//!
//! Miss accounting follows the paper (§7.1.1): the set-associative L1 and
//! the superpage TLB are probed in parallel and share one hit time, so a
//! *L1 miss* means both missed; a *L2 miss* means every structure missed
//! and a page walk is required.

/// Counters for one run of a TLB hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HierarchyStats {
    /// Total translation requests.
    pub accesses: u64,
    /// Hits at L1 level (set-associative L1 *or* superpage TLB).
    pub l1_hits: u64,
    /// Misses at L1 level.
    pub l1_misses: u64,
    /// Hits in the L2 TLB (after an L1-level miss).
    pub l2_hits: u64,
    /// Misses everywhere: page walks.
    pub l2_misses: u64,
    /// Fills performed after walks.
    pub fills: u64,
    /// Fills that installed a superpage entry.
    pub superpage_fills: u64,
    /// Lookups served by the prefetch buffer (related-work baseline).
    pub pb_hits: u64,
    /// Histogram of coalesced run lengths at fill time;
    /// `coalesce_hist[k]` counts fills whose run coalesced `k+1`
    /// translations (index 7 = the 8-translation cache-line maximum).
    pub coalesce_hist: [u64; 8],
    /// Fills whose run length fell outside the possible 1..=8 range of
    /// one PTE cache line — always zero unless a coalescing bug
    /// manufactured an impossible run. Kept out of the histogram so the
    /// invariant checker can see such lengths instead of having them
    /// clamped into the edge buckets.
    pub coalesce_overflow: u64,
    /// ASID-selective flushes performed (SMP tagged mode; zero in the
    /// paper's single-core untagged configurations).
    pub asid_flushes: u64,
    /// Entries removed by ASID-selective flushes.
    pub asid_entries_flushed: u64,
}

impl HierarchyStats {
    /// L1-level miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.l1_misses as f64 / self.accesses as f64
    }

    /// Walk (L2 miss) ratio over all accesses.
    pub fn l2_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.l2_misses as f64 / self.accesses as f64
    }

    /// Misses per million *accesses* scaled by an instructions-per-access
    /// factor: MPMI as the paper reports it, given how many instructions
    /// each memory access represents.
    pub fn mpmi(&self, misses: u64, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        misses as f64 * 1.0e6 / instructions as f64
    }

    /// Average translations per fill (coalescing effectiveness).
    pub fn avg_coalescing(&self) -> f64 {
        let fills: u64 = self.coalesce_hist.iter().sum();
        if fills == 0 {
            return 0.0;
        }
        let translations: u64 = self
            .coalesce_hist
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        translations as f64 / fills as f64
    }

    /// Counter-wise difference `self - before`: measurement windows
    /// (snapshot at the warmup boundary, subtract at the end).
    #[must_use]
    pub fn since(&self, before: &Self) -> Self {
        let mut d = *self;
        d.accesses -= before.accesses;
        d.l1_hits -= before.l1_hits;
        d.l1_misses -= before.l1_misses;
        d.l2_hits -= before.l2_hits;
        d.l2_misses -= before.l2_misses;
        d.fills -= before.fills;
        d.superpage_fills -= before.superpage_fills;
        d.pb_hits -= before.pb_hits;
        d.coalesce_overflow -= before.coalesce_overflow;
        for i in 0..d.coalesce_hist.len() {
            d.coalesce_hist[i] -= before.coalesce_hist[i];
        }
        d.asid_flushes -= before.asid_flushes;
        d.asid_entries_flushed -= before.asid_entries_flushed;
        d
    }

    /// Counter-wise sum: aggregating per-core hierarchies into one
    /// machine-wide view.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        let mut s = *self;
        s.accesses += other.accesses;
        s.l1_hits += other.l1_hits;
        s.l1_misses += other.l1_misses;
        s.l2_hits += other.l2_hits;
        s.l2_misses += other.l2_misses;
        s.fills += other.fills;
        s.superpage_fills += other.superpage_fills;
        s.pb_hits += other.pb_hits;
        s.coalesce_overflow += other.coalesce_overflow;
        for i in 0..s.coalesce_hist.len() {
            s.coalesce_hist[i] += other.coalesce_hist[i];
        }
        s.asid_flushes += other.asid_flushes;
        s.asid_entries_flushed += other.asid_entries_flushed;
        s
    }

    /// Records one fill of a run with `len` coalesced translations. A
    /// cache line holds eight PTEs, so lengths outside 1..=8 cannot come
    /// from a correct coalescing pass: they trip a debug assertion and
    /// land in [`HierarchyStats::coalesce_overflow`] rather than being
    /// laundered into the edge histogram buckets.
    pub(crate) fn record_fill(&mut self, len: u64) {
        self.fills += 1;
        debug_assert!(
            (1..=8).contains(&len),
            "fill length {len} exceeds the 8-PTE cache-line bound"
        );
        if (1..=8).contains(&len) {
            self.coalesce_hist[(len - 1) as usize] += 1;
        } else {
            self.coalesce_overflow += 1;
        }
    }
}

/// Percentage of baseline misses eliminated: the paper's Figure 18/19/20
/// metric. Negative values mean the design *added* misses (as Figure 19
/// shows for over-aggressive index shifts).
pub fn pct_misses_eliminated(baseline_misses: u64, colt_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (baseline_misses as f64 - colt_misses as f64) * 100.0 / baseline_misses as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_empty_safety() {
        let mut s = HierarchyStats::default();
        assert_eq!(s.l1_miss_ratio(), 0.0);
        assert_eq!(s.l2_miss_ratio(), 0.0);
        assert_eq!(s.avg_coalescing(), 0.0);
        s.accesses = 100;
        s.l1_misses = 25;
        s.l2_misses = 10;
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.l2_miss_ratio() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn fill_histogram_records_lengths() {
        let mut s = HierarchyStats::default();
        s.record_fill(1);
        s.record_fill(4);
        s.record_fill(4);
        s.record_fill(8);
        assert_eq!(s.fills, 4);
        assert_eq!(s.coalesce_hist[0], 1);
        assert_eq!(s.coalesce_hist[3], 2);
        assert_eq!(s.coalesce_hist[7], 1);
        assert!((s.avg_coalescing() - 17.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "cache-line bound"))]
    fn oversized_fill_lengths_are_flagged_not_laundered() {
        let mut s = HierarchyStats::default();
        s.record_fill(100); // panics in debug builds
        // Release builds: counted as overflow, never folded into the
        // histogram where it would inflate avg_coalescing.
        assert_eq!(s.coalesce_overflow, 1);
        assert_eq!(s.coalesce_hist[7], 0);
        assert_eq!(s.avg_coalescing(), 0.0);
    }

    #[test]
    fn miss_elimination_percentages() {
        assert_eq!(pct_misses_eliminated(100, 60), 40.0);
        assert_eq!(pct_misses_eliminated(100, 125), -25.0);
        assert_eq!(pct_misses_eliminated(0, 10), 0.0);
    }

    #[test]
    fn mpmi_scales_to_million_instructions() {
        let s = HierarchyStats::default();
        assert!((s.mpmi(500, 1_000_000) - 500.0).abs() < 1e-9);
        assert!((s.mpmi(500, 10_000_000) - 50.0).abs() < 1e-9);
        assert_eq!(s.mpmi(500, 0), 0.0);
    }
}
