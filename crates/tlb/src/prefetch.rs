//! A sequential TLB prefetcher with a distinct prefetch buffer — the
//! related-work baseline the paper positions CoLT against (§2.1, §2.4).
//!
//! Kandiraju & Sivasubramaniam (ref. 19) and Saulsbury et al. (ref. 27) prefetch
//! translations into a *separate* buffer so that wrong prefetches cannot
//! evict useful TLB entries (the paper repeats this design constraint in
//! §4: "prior work mitigates these problems by using separate structures
//! to store prefetched translations"). This module implements the
//! simplest effective member of that family: on a TLB miss for page `v`,
//! request the translations of `v+1 .. v+degree` in the background and
//! hold them in a small fully-associative buffer probed in parallel with
//! the L1.
//!
//! Contrast with CoLT: prefetching spends extra page walks (bandwidth)
//! and can only stage one translation per entry, while CoLT gets up to
//! eight translations from the cache line the demand walk already
//! fetched, for free.

use colt_os_mem::addr::{Pfn, Vpn};
use colt_os_mem::page_table::PteFlags;

/// Prefetcher configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchConfig {
    /// Entries in the prefetch buffer.
    pub buffer_entries: usize,
    /// Translations requested ahead of each miss (`v+1 ..= v+degree`).
    pub degree: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { buffer_entries: 16, degree: 1 }
    }
}

/// Prefetcher counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Lookups served by the buffer.
    pub hits: u64,
    /// Prefetched entries evicted before use.
    pub wasted: u64,
}

/// The prefetch buffer plus its request queue.
///
/// ```
/// use colt_tlb::prefetch::{PrefetchBuffer, PrefetchConfig};
/// use colt_os_mem::addr::{Pfn, Vpn};
/// use colt_os_mem::page_table::PteFlags;
/// let mut pb = PrefetchBuffer::new(PrefetchConfig::default());
/// pb.note_miss(Vpn::new(10));
/// assert_eq!(pb.take_requests(), vec![Vpn::new(11)]);
/// pb.fill(Vpn::new(11), Pfn::new(111), PteFlags::user_data());
/// assert_eq!(pb.lookup(Vpn::new(11)).map(|(p, _)| p), Some(Pfn::new(111)));
/// ```
#[derive(Clone, Debug)]
pub struct PrefetchBuffer {
    config: PrefetchConfig,
    /// `(vpn, pfn, flags, used)` in MRU-first order.
    entries: Vec<(Vpn, Pfn, PteFlags, bool)>,
    pending: Vec<Vpn>,
    stats: PrefetchStats,
}

impl PrefetchBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    /// Panics on a zero-entry buffer or zero degree.
    pub fn new(config: PrefetchConfig) -> Self {
        assert!(config.buffer_entries > 0, "buffer must hold entries");
        assert!(config.degree > 0, "degree must be positive");
        Self {
            config,
            entries: Vec::with_capacity(config.buffer_entries),
            pending: Vec::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Records a demand miss: queues prefetch requests for the next
    /// `degree` pages (skipping ones already buffered or pending).
    pub fn note_miss(&mut self, vpn: Vpn) {
        for d in 1..=self.config.degree {
            let target = vpn.offset(d);
            let buffered = self.entries.iter().any(|&(v, _, _, _)| v == target);
            let pending = self.pending.contains(&target);
            if !buffered && !pending {
                self.pending.push(target);
            }
        }
    }

    /// Drains the queued prefetch requests; the caller performs the
    /// background walks and calls [`PrefetchBuffer::fill`] with results.
    pub fn take_requests(&mut self) -> Vec<Vpn> {
        std::mem::take(&mut self.pending)
    }

    /// Installs a prefetched translation, evicting the LRU entry when
    /// full (an unused victim counts as a wasted prefetch).
    pub fn fill(&mut self, vpn: Vpn, pfn: Pfn, flags: PteFlags) {
        self.stats.issued += 1;
        if self.entries.len() == self.config.buffer_entries {
            if let Some((_, _, _, used)) = self.entries.pop() {
                if !used {
                    self.stats.wasted += 1;
                }
            }
        }
        self.entries.insert(0, (vpn, pfn, flags, false));
    }

    /// Probes the buffer (parallel with the L1). A hit promotes the
    /// entry out of the buffer — the caller installs it in the TLB
    /// proper, as the prefetching papers do.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<(Pfn, PteFlags)> {
        if let Some(pos) = self.entries.iter().position(|&(v, _, _, _)| v == vpn) {
            let (_, pfn, flags, _) = self.entries.remove(pos);
            self.stats.hits += 1;
            return Some((pfn, flags));
        }
        None
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Removes any entry for `vpn` (invalidation).
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.entries.retain(|&(v, _, _, _)| v != vpn);
        self.pending.retain(|&v| v != vpn);
    }

    /// Empties the buffer and queue.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(entries: usize, degree: u64) -> PrefetchBuffer {
        PrefetchBuffer::new(PrefetchConfig { buffer_entries: entries, degree })
    }

    #[test]
    fn miss_queues_next_pages() {
        let mut b = pb(16, 2);
        b.note_miss(Vpn::new(10));
        assert_eq!(b.take_requests(), vec![Vpn::new(11), Vpn::new(12)]);
        assert!(b.take_requests().is_empty(), "queue drained");
    }

    #[test]
    fn duplicate_requests_are_suppressed() {
        let mut b = pb(16, 1);
        b.note_miss(Vpn::new(10));
        b.note_miss(Vpn::new(10));
        assert_eq!(b.take_requests().len(), 1);
        b.fill(Vpn::new(11), Pfn::new(111), PteFlags::user_data());
        b.note_miss(Vpn::new(10)); // target already buffered
        assert!(b.take_requests().is_empty());
    }

    #[test]
    fn hit_promotes_entry_out_of_the_buffer() {
        let mut b = pb(16, 1);
        b.fill(Vpn::new(11), Pfn::new(111), PteFlags::user_data());
        assert_eq!(b.lookup(Vpn::new(11)).map(|(p, _)| p), Some(Pfn::new(111)));
        assert_eq!(b.lookup(Vpn::new(11)), None, "promoted, no longer buffered");
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn eviction_of_unused_entries_counts_as_waste() {
        let mut b = pb(2, 1);
        b.fill(Vpn::new(1), Pfn::new(1), PteFlags::user_data());
        b.fill(Vpn::new(2), Pfn::new(2), PteFlags::user_data());
        b.fill(Vpn::new(3), Pfn::new(3), PteFlags::user_data()); // evicts vpn 1 unused
        assert_eq!(b.stats().wasted, 1);
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut b = pb(4, 1);
        b.fill(Vpn::new(1), Pfn::new(1), PteFlags::user_data());
        b.note_miss(Vpn::new(1));
        b.invalidate(Vpn::new(1));
        assert_eq!(b.lookup(Vpn::new(1)), None);
        b.fill(Vpn::new(5), Pfn::new(5), PteFlags::user_data());
        b.flush();
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn zero_degree_panics() {
        let _ = pb(4, 0);
    }
}
